// Package slp is a from-scratch legacy stack for the Service Location
// Protocol (RFC 2608 subset) — the binary discovery protocol of the
// paper's case study. It stands in for OpenSLP (DESIGN.md §5): an
// independent implementation of the same wire format, deliberately NOT
// sharing the Starlink MDL machinery, so bridging tests exercise real
// cross-implementation interoperability.
//
// Wire layout follows the paper's Fig. 7 MDL (which matches RFC 2608):
//
//	Header: Version(8) FunctionID(8) MessageLength(24) reserved(16)
//	        NextExtOffset(24) XID(16) LangTagLen(16) LangTag(var)
//	SrvRqst body: PRLength(16) PRList SrvTypeLen(16) SrvType
//	              PredLen(16) Pred SPILen(16) SPI
//	SrvRply body: ErrorCode(16) URLCount(16) URLLen(16) URL
package slp

import (
	"encoding/binary"
	"fmt"
)

// Function IDs (RFC 2608 §4.1).
const (
	FnSrvRqst = 1
	FnSrvRply = 2
)

// Version is the SLPv2 protocol version.
const Version = 2

// Port and group are the paper's Fig. 1 color attributes.
const (
	Port  = 427
	Group = "239.255.255.253"
)

// Header is the common SLP message header.
type Header struct {
	Version    int
	FunctionID int
	Length     int // total message length, filled by Marshal
	XID        int
	LangTag    string
}

// SrvRqst is a service request.
type SrvRqst struct {
	Header
	PRList      string
	ServiceType string
	Predicate   string
	SPI         string
}

// SrvRply is a service reply.
type SrvRply struct {
	Header
	ErrorCode int
	URLs      []string
}

func marshalHeader(h *Header, fn int, out []byte) []byte {
	lang := h.LangTag
	if lang == "" {
		lang = "en"
	}
	out = append(out, byte(Version), byte(fn))
	out = append(out, 0, 0, 0) // MessageLength placeholder
	out = append(out, 0, 0)    // reserved/flags
	out = append(out, 0, 0, 0) // NextExtOffset
	out = binary.BigEndian.AppendUint16(out, uint16(h.XID))
	out = binary.BigEndian.AppendUint16(out, uint16(len(lang)))
	out = append(out, lang...)
	return out
}

func appendString16(out []byte, s string) []byte {
	out = binary.BigEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

func patchLength(out []byte) []byte {
	n := len(out)
	out[2], out[3], out[4] = byte(n>>16), byte(n>>8), byte(n)
	return out
}

// Marshal encodes a SrvRqst.
func (m *SrvRqst) Marshal() []byte {
	out := marshalHeader(&m.Header, FnSrvRqst, nil)
	out = appendString16(out, m.PRList)
	out = appendString16(out, m.ServiceType)
	out = appendString16(out, m.Predicate)
	out = appendString16(out, m.SPI)
	return patchLength(out)
}

// Marshal encodes a SrvRply. Only single-URL replies are emitted by
// this stack (the paper's case study exchanges one URL per lookup).
func (m *SrvRply) Marshal() []byte {
	out := marshalHeader(&m.Header, FnSrvRply, nil)
	out = binary.BigEndian.AppendUint16(out, uint16(m.ErrorCode))
	out = binary.BigEndian.AppendUint16(out, uint16(len(m.URLs)))
	for _, u := range m.URLs {
		out = appendString16(out, u)
	}
	return patchLength(out)
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) u8() (int, error) {
	if r.pos+1 > len(r.data) {
		return 0, fmt.Errorf("slp: truncated message")
	}
	v := int(r.data[r.pos])
	r.pos++
	return v, nil
}

func (r *reader) u16() (int, error) {
	if r.pos+2 > len(r.data) {
		return 0, fmt.Errorf("slp: truncated message")
	}
	v := int(binary.BigEndian.Uint16(r.data[r.pos:]))
	r.pos += 2
	return v, nil
}

func (r *reader) u24() (int, error) {
	if r.pos+3 > len(r.data) {
		return 0, fmt.Errorf("slp: truncated message")
	}
	v := int(r.data[r.pos])<<16 | int(r.data[r.pos+1])<<8 | int(r.data[r.pos+2])
	r.pos += 3
	return v, nil
}

func (r *reader) str(n int) (string, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return "", fmt.Errorf("slp: truncated string")
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s, nil
}

func (r *reader) str16() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	return r.str(n)
}

func parseHeader(r *reader) (Header, error) {
	var h Header
	var err error
	if h.Version, err = r.u8(); err != nil {
		return h, err
	}
	if h.Version != Version {
		return h, fmt.Errorf("slp: unsupported version %d", h.Version)
	}
	if h.FunctionID, err = r.u8(); err != nil {
		return h, err
	}
	if h.Length, err = r.u24(); err != nil {
		return h, err
	}
	if h.Length != len(r.data) {
		return h, fmt.Errorf("slp: header length %d != datagram %d", h.Length, len(r.data))
	}
	if _, err = r.u16(); err != nil { // reserved
		return h, err
	}
	if _, err = r.u24(); err != nil { // next ext offset
		return h, err
	}
	if h.XID, err = r.u16(); err != nil {
		return h, err
	}
	if h.LangTag, err = r.str16(); err != nil {
		return h, err
	}
	return h, nil
}

// Parse decodes any SLP message, returning *SrvRqst or *SrvRply.
func Parse(data []byte) (interface{}, error) {
	r := &reader{data: data}
	h, err := parseHeader(r)
	if err != nil {
		return nil, err
	}
	switch h.FunctionID {
	case FnSrvRqst:
		m := &SrvRqst{Header: h}
		if m.PRList, err = r.str16(); err != nil {
			return nil, err
		}
		if m.ServiceType, err = r.str16(); err != nil {
			return nil, err
		}
		if m.Predicate, err = r.str16(); err != nil {
			return nil, err
		}
		if m.SPI, err = r.str16(); err != nil {
			return nil, err
		}
		return m, nil
	case FnSrvRply:
		m := &SrvRply{Header: h}
		if m.ErrorCode, err = r.u16(); err != nil {
			return nil, err
		}
		count, err := r.u16()
		if err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			u, err := r.str16()
			if err != nil {
				return nil, err
			}
			m.URLs = append(m.URLs, u)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("slp: unknown function id %d", h.FunctionID)
	}
}
