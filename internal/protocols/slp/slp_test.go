package slp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/simnet"
)

func TestCodecSrvRqstRoundtrip(t *testing.T) {
	m := &SrvRqst{
		Header:      Header{XID: 77, LangTag: "en"},
		ServiceType: "service:printer",
		Predicate:   "(color=true)",
	}
	data := m.Marshal()
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := back.(*SrvRqst)
	if !ok {
		t.Fatalf("got %T", back)
	}
	if got.XID != 77 || got.ServiceType != "service:printer" || got.Predicate != "(color=true)" {
		t.Fatalf("got %+v", got)
	}
	if got.Length != len(data) {
		t.Fatalf("length field %d != %d", got.Length, len(data))
	}
}

func TestCodecSrvRplyRoundtrip(t *testing.T) {
	m := &SrvRply{
		Header: Header{XID: 9},
		URLs:   []string{"service:printer://10.0.0.9:515", "service:printer://10.0.0.8:515"},
	}
	back, err := Parse(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got := back.(*SrvRply)
	if len(got.URLs) != 2 || got.URLs[0] != "service:printer://10.0.0.9:515" {
		t.Fatalf("got %+v", got)
	}
	if got.XID != 9 {
		t.Fatalf("xid = %d", got.XID)
	}
}

func TestCodecErrors(t *testing.T) {
	m := &SrvRqst{Header: Header{XID: 1}, ServiceType: "service:x"}
	data := m.Marshal()
	// Truncations at every prefix must fail cleanly, never panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := Parse(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Wrong version.
	bad := append([]byte{}, data...)
	bad[0] = 1
	if _, err := Parse(bad); err == nil {
		t.Fatal("version 1 should fail")
	}
	// Unknown function.
	bad = append([]byte{}, data...)
	bad[1] = 42
	if _, err := Parse(bad); err == nil {
		t.Fatal("unknown function should fail")
	}
	// Corrupt length field.
	bad = append([]byte{}, data...)
	bad[4] = bad[4] + 1
	if _, err := Parse(bad); err == nil {
		t.Fatal("bad length should fail")
	}
}

// Property: marshal/parse identity over arbitrary field content.
func TestQuickCodecRoundtrip(t *testing.T) {
	f := func(xid uint16, svcRaw, urlRaw []byte) bool {
		svc := sanitize(svcRaw)
		url := sanitize(urlRaw)
		rq := &SrvRqst{Header: Header{XID: int(xid)}, ServiceType: svc}
		back, err := Parse(rq.Marshal())
		if err != nil {
			return false
		}
		brq, ok := back.(*SrvRqst)
		if !ok || brq.XID != int(xid) || brq.ServiceType != svc {
			return false
		}
		rp := &SrvRply{Header: Header{XID: int(xid)}, URLs: []string{url}}
		back, err = Parse(rp.Marshal())
		if err != nil {
			return false
		}
		brp, ok := back.(*SrvRply)
		return ok && len(brp.URLs) == 1 && brp.URLs[0] == url
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(raw []byte) string {
	out := make([]byte, 0, len(raw))
	for _, b := range raw {
		out = append(out, 'a'+b%26)
	}
	return string(out)
}

func TestLookupAgainstServiceAgent(t *testing.T) {
	sim := simnet.New()
	svcNode, _ := sim.NewNode("10.0.0.2")
	cliNode, _ := sim.NewNode("10.0.0.1")

	sa, err := NewServiceAgent(svcNode, "service:printer", "service:printer://10.0.0.2:515")
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()

	ua := NewUserAgent(cliNode, WithConvergenceWait(100*time.Millisecond))
	var res LookupResult
	gotResult := false
	ua.Lookup("service:printer", func(r LookupResult) { res = r; gotResult = true })
	if err := sim.RunUntil(func() bool { return gotResult }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.URLs) != 1 || res.URLs[0] != "service:printer://10.0.0.2:515" {
		t.Fatalf("urls = %v", res.URLs)
	}
	if res.Elapsed < 100*time.Millisecond {
		t.Fatalf("elapsed %v shorter than convergence window", res.Elapsed)
	}
	if sa.Answered != 1 {
		t.Fatalf("answered = %d", sa.Answered)
	}
}

func TestLookupDefaultWindowIsSixSeconds(t *testing.T) {
	sim := simnet.New()
	svcNode, _ := sim.NewNode("10.0.0.2")
	cliNode, _ := sim.NewNode("10.0.0.1")
	if _, err := NewServiceAgent(svcNode, "service:printer", "service:x"); err != nil {
		t.Fatal(err)
	}
	ua := NewUserAgent(cliNode)
	var elapsed time.Duration
	done := false
	ua.Lookup("service:printer", func(r LookupResult) { elapsed = r.Elapsed; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	// The native SLP lookup must be dominated by the ~6 s convergence
	// window — the effect behind Fig. 12(a)'s 6022 ms median.
	if elapsed < 6*time.Second || elapsed > 6*time.Second+50*time.Millisecond {
		t.Fatalf("elapsed = %v, want ~6s", elapsed)
	}
}

func TestLookupNoService(t *testing.T) {
	sim := simnet.New()
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := NewUserAgent(cliNode, WithConvergenceWait(50*time.Millisecond))
	var res LookupResult
	done := false
	ua.Lookup("service:ghost", func(r LookupResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || len(res.URLs) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestServiceAgentIgnoresOtherTypes(t *testing.T) {
	sim := simnet.New()
	svcNode, _ := sim.NewNode("10.0.0.2")
	cliNode, _ := sim.NewNode("10.0.0.1")
	sa, _ := NewServiceAgent(svcNode, "service:printer", "service:x")
	ua := NewUserAgent(cliNode, WithConvergenceWait(50*time.Millisecond))
	done := false
	var res LookupResult
	ua.Lookup("service:scanner", func(r LookupResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 0 || sa.Answered != 0 {
		t.Fatalf("res=%v answered=%d", res.URLs, sa.Answered)
	}
}

func TestServiceAgentIgnoresGarbage(t *testing.T) {
	sim := simnet.New()
	svcNode, _ := sim.NewNode("10.0.0.2")
	cliNode, _ := sim.NewNode("10.0.0.1")
	sa, _ := NewServiceAgent(svcNode, "service:printer", "service:x")
	cs, _ := cliNode.OpenUDP(0, func(netapi.Packet) {})
	if err := cs.Send(netapi.Addr{IP: Group, Port: Port}, []byte{0xFF, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if sa.Answered != 0 {
		t.Fatal("garbage datagram must be ignored")
	}
}

func TestServiceAgentRandomisedDelay(t *testing.T) {
	sim := simnet.New()
	svcNode, _ := sim.NewNode("10.0.0.2")
	cliNode, _ := sim.NewNode("10.0.0.1")
	rng := rand.New(rand.NewSource(7))
	sa, err := NewServiceAgent(svcNode, "service:printer", "service:x",
		WithResponseDelay(70*time.Millisecond, rng))
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	ua := NewUserAgent(cliNode, WithConvergenceWait(200*time.Millisecond))
	var res LookupResult
	done := false
	ua.Lookup("service:printer", func(r LookupResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 1 {
		t.Fatalf("urls = %v (reply must arrive within the window despite delay)", res.URLs)
	}
}

func TestUserAgentJitterStaysBounded(t *testing.T) {
	sim := simnet.New()
	cliNode, _ := sim.NewNode("10.0.0.1")
	rng := rand.New(rand.NewSource(3))
	ua := NewUserAgent(cliNode,
		WithConvergenceWait(100*time.Millisecond),
		WithWaitJitter(40*time.Millisecond, rng))
	var elapsed time.Duration
	done := false
	ua.Lookup("service:x", func(r LookupResult) { elapsed = r.Elapsed; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if elapsed < 80*time.Millisecond || elapsed > 120*time.Millisecond {
		t.Fatalf("elapsed %v outside jitter bounds", elapsed)
	}
}
