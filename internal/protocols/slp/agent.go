package slp

import (
	"fmt"
	"math/rand"
	"time"

	"starlink/internal/netapi"
)

// DefaultConvergenceWait is how long a user agent collects multicast
// replies before reporting results. OpenSLP's multicast convergence
// schedule makes native lookups take ~6 s (the paper's Fig. 12(a)
// measures a 6022 ms median); see internal/bench/calibration.go.
const DefaultConvergenceWait = 6 * time.Second

// ServiceAgentOption configures a ServiceAgent.
type ServiceAgentOption func(*ServiceAgent)

// WithResponseDelay makes the agent wait a uniform random delay in
// [0, d) before answering a multicast request — RFC 2608 mandates
// randomised response times to avoid reply implosion.
func WithResponseDelay(d time.Duration, rng *rand.Rand) ServiceAgentOption {
	return func(sa *ServiceAgent) { sa.maxDelay, sa.rng = d, rng }
}

// ServiceAgent is the legacy SLP server: it joins the SLP multicast
// group and answers SrvRqst messages for its registered service.
type ServiceAgent struct {
	node        netapi.Node
	sock        netapi.UDPSocket
	serviceType string
	url         string
	maxDelay    time.Duration
	rng         *rand.Rand

	// Answered counts requests served; used by tests.
	Answered int
}

// NewServiceAgent registers a service and starts answering lookups.
func NewServiceAgent(node netapi.Node, serviceType, url string, opts ...ServiceAgentOption) (*ServiceAgent, error) {
	sa := &ServiceAgent{node: node, serviceType: serviceType, url: url}
	for _, o := range opts {
		o(sa)
	}
	group := netapi.Addr{IP: Group, Port: Port}
	// The read loop may dispatch a packet before this constructor
	// finishes; the barrier orders the sa.sock publication (and every
	// earlier field write) before the first onPacket runs.
	ready := make(chan struct{})
	sock, err := node.JoinGroup(group, func(pkt netapi.Packet) {
		<-ready
		sa.onPacket(pkt)
	})
	if err != nil {
		return nil, fmt.Errorf("slp: service agent: %w", err)
	}
	sa.sock = sock
	close(ready)
	return sa, nil
}

// Close stops the agent.
func (sa *ServiceAgent) Close() error { return sa.sock.Close() }

func (sa *ServiceAgent) onPacket(pkt netapi.Packet) {
	msg, err := Parse(pkt.Data)
	if err != nil {
		return // legacy stacks ignore garbage datagrams
	}
	req, ok := msg.(*SrvRqst)
	if !ok {
		return
	}
	if req.ServiceType != sa.serviceType {
		return
	}
	reply := &SrvRply{
		Header: Header{XID: req.XID, LangTag: req.LangTag},
		URLs:   []string{sa.url},
	}
	data := reply.Marshal()
	send := func() {
		sa.Answered++
		_ = sa.sock.Send(pkt.From, data)
	}
	if sa.maxDelay > 0 && sa.rng != nil {
		sa.node.After(time.Duration(sa.rng.Int63n(int64(sa.maxDelay))), send)
	} else {
		send()
	}
}

// UserAgentOption configures a UserAgent.
type UserAgentOption func(*UserAgent)

// WithConvergenceWait overrides the multicast convergence window.
func WithConvergenceWait(d time.Duration) UserAgentOption {
	return func(ua *UserAgent) { ua.wait = d }
}

// WithWaitJitter adds a uniform random perturbation in [-d/2, +d/2] to
// the convergence window, modelling the variance of the retransmission
// schedule visible in the paper's min/max columns.
func WithWaitJitter(d time.Duration, rng *rand.Rand) UserAgentOption {
	return func(ua *UserAgent) { ua.jitter, ua.rng = d, rng }
}

// UserAgent is the legacy SLP client.
type UserAgent struct {
	node   netapi.Node
	wait   time.Duration
	jitter time.Duration
	rng    *rand.Rand
	xid    int
}

// NewUserAgent creates a client on the node.
func NewUserAgent(node netapi.Node, opts ...UserAgentOption) *UserAgent {
	ua := &UserAgent{node: node, wait: DefaultConvergenceWait, xid: 1}
	for _, o := range opts {
		o(ua)
	}
	return ua
}

// LookupResult is delivered when a lookup completes.
type LookupResult struct {
	URLs    []string
	Elapsed time.Duration
	Err     error
}

// Lookup multicasts a SrvRqst for the service type and collects unicast
// replies for the convergence window, then invokes done. It mirrors
// OpenSLP's blocking SLPFindSrvs call in event-driven form.
func (ua *UserAgent) Lookup(serviceType string, done func(LookupResult)) {
	ua.xid++
	req := &SrvRqst{Header: Header{XID: ua.xid, LangTag: "en"}, ServiceType: serviceType}
	wantXID := ua.xid
	start := ua.node.Now()
	var urls []string

	sock, err := ua.node.OpenUDP(0, func(pkt netapi.Packet) {
		msg, err := Parse(pkt.Data)
		if err != nil {
			return
		}
		rply, ok := msg.(*SrvRply)
		if !ok || rply.XID != wantXID || rply.ErrorCode != 0 {
			return
		}
		urls = append(urls, rply.URLs...)
	})
	if err != nil {
		done(LookupResult{Err: fmt.Errorf("slp: lookup: %w", err)})
		return
	}
	if err := sock.Send(netapi.Addr{IP: Group, Port: Port}, req.Marshal()); err != nil {
		_ = sock.Close()
		done(LookupResult{Err: fmt.Errorf("slp: lookup: %w", err)})
		return
	}
	wait := ua.wait
	if ua.jitter > 0 && ua.rng != nil {
		wait += time.Duration(ua.rng.Int63n(int64(ua.jitter))) - ua.jitter/2
	}
	ua.node.After(wait, func() {
		_ = sock.Close()
		done(LookupResult{URLs: urls, Elapsed: ua.node.Now().Sub(start)})
	})
}
