// Package dnssd is a from-scratch legacy stack for multicast DNS
// service discovery — the Bonjour protocol of the paper's case study
// (Fig. 9: the mDNS colored automaton). It stands in for the Apple
// Bonjour SDK (DESIGN.md §5).
//
// Wire format: standard DNS messages on 224.0.0.251:5353. Queries carry
// one question (QTYPE PTR). Responses carry no question echo and one
// answer record whose RDATA is the service URL as text (a TXT-style
// record) — the simplification the paper itself uses, where the SLP
// reply URL "was transfered from the RDATA value of the DNS Response"
// (§V-A). Name compression is not emitted (legal per RFC 6762).
package dnssd

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"starlink/internal/netapi"
)

// Port and Group are the paper's Fig. 9 color attributes.
const (
	Port  = 5353
	Group = "224.0.0.251"
)

// DNS constants used by the stack.
const (
	TypePTR  = 12
	TypeTXT  = 16
	ClassIN  = 1
	FlagResp = 0x8400 // QR=1, AA=1 — the paper MDL's Flags=33792 rule
)

// DefaultBrowseWindow is how long the one-shot browse client collects
// responses — calibrated to the paper's Fig. 12(a) Bonjour median of
// 710 ms (see internal/bench/calibration.go).
const DefaultBrowseWindow = 700 * time.Millisecond

// Question is a DNS question.
type Question struct {
	Name  string
	QType int
}

// Answer is one DNS resource record.
type Answer struct {
	Name  string
	AType int
	TTL   int
	RDATA string
}

// Message is a DNS message.
type Message struct {
	ID        int
	Flags     int
	Questions []Question
	Answers   []Answer
}

// IsQuery reports whether the message is a query.
func (m *Message) IsQuery() bool { return m.Flags&0x8000 == 0 }

func appendName(out []byte, name string) ([]byte, error) {
	if name != "" && name != "." {
		for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
			if label == "" || len(label) > 63 {
				return nil, fmt.Errorf("dnssd: bad label %q in %q", label, name)
			}
			out = append(out, byte(len(label)))
			out = append(out, label...)
		}
	}
	return append(out, 0), nil
}

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	var out []byte
	out = binary.BigEndian.AppendUint16(out, uint16(m.ID))
	out = binary.BigEndian.AppendUint16(out, uint16(m.Flags))
	out = binary.BigEndian.AppendUint16(out, uint16(len(m.Questions)))
	out = binary.BigEndian.AppendUint16(out, uint16(len(m.Answers)))
	out = binary.BigEndian.AppendUint16(out, 0) // NSCOUNT
	out = binary.BigEndian.AppendUint16(out, 0) // ARCOUNT
	var err error
	for _, q := range m.Questions {
		if out, err = appendName(out, q.Name); err != nil {
			return nil, err
		}
		out = binary.BigEndian.AppendUint16(out, uint16(q.QType))
		out = binary.BigEndian.AppendUint16(out, ClassIN)
	}
	for _, a := range m.Answers {
		if out, err = appendName(out, a.Name); err != nil {
			return nil, err
		}
		out = binary.BigEndian.AppendUint16(out, uint16(a.AType))
		out = binary.BigEndian.AppendUint16(out, ClassIN)
		out = binary.BigEndian.AppendUint32(out, uint32(a.TTL))
		out = binary.BigEndian.AppendUint16(out, uint16(len(a.RDATA)))
		out = append(out, a.RDATA...)
	}
	return out, nil
}

func readName(data []byte, pos int) (string, int, error) {
	var labels []string
	for {
		if pos >= len(data) {
			return "", 0, fmt.Errorf("dnssd: truncated name")
		}
		l := int(data[pos])
		pos++
		if l == 0 {
			break
		}
		if l > 63 {
			return "", 0, fmt.Errorf("dnssd: compression pointers unsupported")
		}
		if pos+l > len(data) {
			return "", 0, fmt.Errorf("dnssd: truncated label")
		}
		labels = append(labels, string(data[pos:pos+l]))
		pos += l
	}
	return strings.Join(labels, "."), pos, nil
}

// Parse decodes a DNS message.
func Parse(data []byte) (*Message, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("dnssd: short header")
	}
	m := &Message{
		ID:    int(binary.BigEndian.Uint16(data[0:])),
		Flags: int(binary.BigEndian.Uint16(data[2:])),
	}
	qd := int(binary.BigEndian.Uint16(data[4:]))
	an := int(binary.BigEndian.Uint16(data[6:]))
	pos := 12
	for i := 0; i < qd; i++ {
		name, next, err := readName(data, pos)
		if err != nil {
			return nil, err
		}
		pos = next
		if pos+4 > len(data) {
			return nil, fmt.Errorf("dnssd: truncated question")
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			QType: int(binary.BigEndian.Uint16(data[pos:])),
		})
		pos += 4
	}
	for i := 0; i < an; i++ {
		name, next, err := readName(data, pos)
		if err != nil {
			return nil, err
		}
		pos = next
		if pos+10 > len(data) {
			return nil, fmt.Errorf("dnssd: truncated answer header")
		}
		atype := int(binary.BigEndian.Uint16(data[pos:]))
		ttl := int(binary.BigEndian.Uint32(data[pos+4:]))
		rdlen := int(binary.BigEndian.Uint16(data[pos+8:]))
		pos += 10
		if pos+rdlen > len(data) {
			return nil, fmt.Errorf("dnssd: truncated RDATA")
		}
		m.Answers = append(m.Answers, Answer{
			Name: name, AType: atype, TTL: ttl,
			RDATA: string(data[pos : pos+rdlen]),
		})
		pos += rdlen
	}
	return m, nil
}

// ResponderOption configures a Responder.
type ResponderOption func(*Responder)

// WithAnswerDelay makes the responder wait a uniform random delay in
// [min, max) before answering — RFC 6762 §6 requires randomised
// response delays for shared records; the bench harness calibrates
// this to the ~250 ms the paper's bridge observes.
func WithAnswerDelay(min, max time.Duration, rng *rand.Rand) ResponderOption {
	return func(r *Responder) { r.delayMin, r.delayMax, r.rng = min, max, rng }
}

// Responder is the legacy Bonjour service side: it answers PTR queries
// for its registered service name with the service URL.
type Responder struct {
	node     netapi.Node
	sock     netapi.UDPSocket
	name     string
	url      string
	delayMin time.Duration
	delayMax time.Duration
	rng      *rand.Rand

	// Answered counts queries served; used by tests.
	Answered int
}

// NewResponder registers a service and starts answering queries.
func NewResponder(node netapi.Node, name, url string, opts ...ResponderOption) (*Responder, error) {
	r := &Responder{node: node, name: name, url: url}
	for _, o := range opts {
		o(r)
	}
	// The read loop may dispatch a packet before this constructor
	// finishes; the barrier orders the r.sock publication (and every
	// earlier field write) before the first onPacket runs.
	ready := make(chan struct{})
	sock, err := node.JoinGroup(netapi.Addr{IP: Group, Port: Port}, func(pkt netapi.Packet) {
		<-ready
		r.onPacket(pkt)
	})
	if err != nil {
		return nil, fmt.Errorf("dnssd: responder: %w", err)
	}
	r.sock = sock
	close(ready)
	return r, nil
}

// Close stops the responder.
func (r *Responder) Close() error { return r.sock.Close() }

func (r *Responder) onPacket(pkt netapi.Packet) {
	msg, err := Parse(pkt.Data)
	if err != nil || !msg.IsQuery() || len(msg.Questions) == 0 {
		return
	}
	q := msg.Questions[0]
	if !strings.EqualFold(q.Name, r.name) {
		return
	}
	resp := &Message{
		ID:    msg.ID,
		Flags: FlagResp,
		Answers: []Answer{{
			Name: r.name, AType: TypeTXT, TTL: 120, RDATA: r.url,
		}},
	}
	data, err := resp.Marshal()
	if err != nil {
		return
	}
	send := func() {
		r.Answered++
		_ = r.sock.Send(pkt.From, data)
	}
	if r.rng != nil && r.delayMax > r.delayMin {
		delay := r.delayMin + time.Duration(r.rng.Int63n(int64(r.delayMax-r.delayMin)))
		r.node.After(delay, send)
		return
	}
	if r.delayMin > 0 {
		r.node.After(r.delayMin, send)
		return
	}
	send()
}

// BrowserOption configures a Browser.
type BrowserOption func(*Browser)

// WithBrowseWindow overrides the collection window.
func WithBrowseWindow(d time.Duration) BrowserOption {
	return func(b *Browser) { b.window = d }
}

// WithWindowJitter perturbs the window by a uniform value in
// [-d/2, +d/2], modelling SDK scheduling variance.
func WithWindowJitter(d time.Duration, rng *rand.Rand) BrowserOption {
	return func(b *Browser) { b.jitter, b.rng = d, rng }
}

// Browser is the legacy Bonjour one-shot lookup client.
type Browser struct {
	node   netapi.Node
	window time.Duration
	jitter time.Duration
	rng    *rand.Rand
	nextID int
}

// NewBrowser creates a browse client.
func NewBrowser(node netapi.Node, opts ...BrowserOption) *Browser {
	b := &Browser{node: node, window: DefaultBrowseWindow, nextID: 1}
	for _, o := range opts {
		o(b)
	}
	return b
}

// BrowseResult is delivered when a browse completes.
type BrowseResult struct {
	URLs    []string
	Elapsed time.Duration
	Err     error
}

// Browse multicasts a PTR question for the service name and collects
// answers for the browse window.
func (b *Browser) Browse(name string, done func(BrowseResult)) {
	b.nextID++
	id := b.nextID
	query := &Message{ID: id, Questions: []Question{{Name: name, QType: TypePTR}}}
	data, err := query.Marshal()
	if err != nil {
		done(BrowseResult{Err: err})
		return
	}
	start := b.node.Now()
	var urls []string
	sock, err := b.node.OpenUDP(0, func(pkt netapi.Packet) {
		msg, err := Parse(pkt.Data)
		if err != nil || msg.IsQuery() || msg.ID != id {
			return
		}
		for _, a := range msg.Answers {
			urls = append(urls, a.RDATA)
		}
	})
	if err != nil {
		done(BrowseResult{Err: fmt.Errorf("dnssd: browse: %w", err)})
		return
	}
	if err := sock.Send(netapi.Addr{IP: Group, Port: Port}, data); err != nil {
		_ = sock.Close()
		done(BrowseResult{Err: fmt.Errorf("dnssd: browse: %w", err)})
		return
	}
	wait := b.window
	if b.jitter > 0 && b.rng != nil {
		wait += time.Duration(b.rng.Int63n(int64(b.jitter))) - b.jitter/2
	}
	b.node.After(wait, func() {
		_ = sock.Close()
		done(BrowseResult{URLs: urls, Elapsed: b.node.Now().Sub(start)})
	})
}
