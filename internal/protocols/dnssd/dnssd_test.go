package dnssd

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/simnet"
)

func TestQueryRoundtrip(t *testing.T) {
	q := &Message{ID: 42, Questions: []Question{{Name: "printer._slp._udp.local", QType: TypePTR}}}
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsQuery() || back.ID != 42 {
		t.Fatalf("back = %+v", back)
	}
	if len(back.Questions) != 1 || back.Questions[0].Name != "printer._slp._udp.local" {
		t.Fatalf("questions = %+v", back.Questions)
	}
	if back.Questions[0].QType != TypePTR {
		t.Fatalf("qtype = %d", back.Questions[0].QType)
	}
}

func TestResponseRoundtrip(t *testing.T) {
	r := &Message{ID: 7, Flags: FlagResp, Answers: []Answer{
		{Name: "printer.local", AType: TypeTXT, TTL: 120, RDATA: "service:printer://10.0.0.9:515"},
	}}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.IsQuery() {
		t.Fatal("response parsed as query")
	}
	if len(back.Answers) != 1 || back.Answers[0].RDATA != "service:printer://10.0.0.9:515" {
		t.Fatalf("answers = %+v", back.Answers)
	}
	if back.Answers[0].TTL != 120 || back.Answers[0].AType != TypeTXT {
		t.Fatalf("answer meta = %+v", back.Answers[0])
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{1, 2, 3}); err == nil {
		t.Error("short header should fail")
	}
	q := &Message{ID: 1, Questions: []Question{{Name: "a.b", QType: TypePTR}}}
	data, _ := q.Marshal()
	for cut := 13; cut < len(data); cut++ {
		if _, err := Parse(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := (&Message{Questions: []Question{{Name: "a..b"}}}).Marshal(); err == nil {
		t.Error("empty label should fail")
	}
}

// Property: marshal/parse identity for arbitrary names and RDATA.
func TestQuickRoundtrip(t *testing.T) {
	f := func(id uint16, nameRaw, rdataRaw []byte) bool {
		name := "svc"
		for _, b := range nameRaw {
			if b%7 == 0 {
				name += "."
				name += string(rune('a' + b%26))
			} else {
				name += string(rune('a' + b%26))
			}
		}
		rdata := string(rdataRaw)
		m := &Message{ID: int(id), Flags: FlagResp, Answers: []Answer{{Name: name, AType: TypeTXT, TTL: 1, RDATA: rdata}}}
		data, err := m.Marshal()
		if err != nil {
			return true // invalid names are allowed to fail
		}
		back, err := Parse(data)
		if err != nil {
			return false
		}
		return back.ID == int(id) && len(back.Answers) == 1 &&
			back.Answers[0].Name == name && back.Answers[0].RDATA == rdata
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBrowseAgainstResponder(t *testing.T) {
	sim := simnet.New()
	svcNode, _ := sim.NewNode("10.0.0.9")
	cliNode, _ := sim.NewNode("10.0.0.1")
	resp, err := NewResponder(svcNode, "printer._slp._udp.local", "service:printer://10.0.0.9:515")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Close()

	b := NewBrowser(cliNode, WithBrowseWindow(100*time.Millisecond))
	var res BrowseResult
	done := false
	b.Browse("printer._slp._udp.local", func(r BrowseResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.URLs) != 1 || res.URLs[0] != "service:printer://10.0.0.9:515" {
		t.Fatalf("urls = %v", res.URLs)
	}
	if resp.Answered != 1 {
		t.Fatalf("answered = %d", resp.Answered)
	}
}

func TestBrowseDefaultWindow(t *testing.T) {
	sim := simnet.New()
	svcNode, _ := sim.NewNode("10.0.0.9")
	cliNode, _ := sim.NewNode("10.0.0.1")
	if _, err := NewResponder(svcNode, "svc.local", "service:x"); err != nil {
		t.Fatal(err)
	}
	b := NewBrowser(cliNode)
	var res BrowseResult
	done := false
	b.Browse("svc.local", func(r BrowseResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	// The ~700 ms browse window behind Fig. 12(a)'s Bonjour median.
	if res.Elapsed < 700*time.Millisecond || res.Elapsed > 750*time.Millisecond {
		t.Fatalf("elapsed = %v, want ~700ms", res.Elapsed)
	}
}

func TestResponderNameMatchingCaseInsensitive(t *testing.T) {
	sim := simnet.New()
	svcNode, _ := sim.NewNode("10.0.0.9")
	cliNode, _ := sim.NewNode("10.0.0.1")
	r, _ := NewResponder(svcNode, "Printer.Local", "service:x")
	b := NewBrowser(cliNode, WithBrowseWindow(50*time.Millisecond))
	done := false
	var res BrowseResult
	b.Browse("printer.local", func(br BrowseResult) { res = br; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 1 || r.Answered != 1 {
		t.Fatalf("urls=%v answered=%d", res.URLs, r.Answered)
	}
}

func TestResponderIgnoresOtherNamesAndGarbage(t *testing.T) {
	sim := simnet.New()
	svcNode, _ := sim.NewNode("10.0.0.9")
	cliNode, _ := sim.NewNode("10.0.0.1")
	r, _ := NewResponder(svcNode, "printer.local", "service:x")
	sock, _ := cliNode.OpenUDP(0, func(netapi.Packet) {})
	q := &Message{ID: 1, Questions: []Question{{Name: "other.local", QType: TypePTR}}}
	data, _ := q.Marshal()
	if err := sock.Send(netapi.Addr{IP: Group, Port: Port}, data); err != nil {
		t.Fatal(err)
	}
	if err := sock.Send(netapi.Addr{IP: Group, Port: Port}, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if r.Answered != 0 {
		t.Fatalf("answered = %d", r.Answered)
	}
}

func TestResponderAnswerDelay(t *testing.T) {
	sim := simnet.New()
	svcNode, _ := sim.NewNode("10.0.0.9")
	cliNode, _ := sim.NewNode("10.0.0.1")
	rng := rand.New(rand.NewSource(11))
	if _, err := NewResponder(svcNode, "printer.local", "service:x",
		WithAnswerDelay(230*time.Millisecond, 280*time.Millisecond, rng)); err != nil {
		t.Fatal(err)
	}
	start := sim.Now()
	var gotAt time.Duration
	sock, _ := cliNode.OpenUDP(0, func(netapi.Packet) {
		if gotAt == 0 {
			gotAt = sim.Now().Sub(start)
		}
	})
	q := &Message{ID: 3, Questions: []Question{{Name: "printer.local", QType: TypePTR}}}
	data, _ := q.Marshal()
	if err := sock.Send(netapi.Addr{IP: Group, Port: Port}, data); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if gotAt < 230*time.Millisecond || gotAt > 290*time.Millisecond {
		t.Fatalf("answer at %v, want within delay bounds", gotAt)
	}
}

func TestBrowserIgnoresForeignIDs(t *testing.T) {
	sim := simnet.New()
	svcNode, _ := sim.NewNode("10.0.0.9")
	cliNode, _ := sim.NewNode("10.0.0.1")
	// A responder that echoes with the wrong transaction ID.
	var rsock netapi.UDPSocket
	rsock, err := svcNode.JoinGroup(netapi.Addr{IP: Group, Port: Port}, func(pkt netapi.Packet) {
		resp := &Message{ID: 9999, Flags: FlagResp, Answers: []Answer{{Name: "x", AType: TypeTXT, RDATA: "bad"}}}
		data, _ := resp.Marshal()
		_ = rsock.Send(pkt.From, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBrowser(cliNode, WithBrowseWindow(50*time.Millisecond))
	done := false
	var res BrowseResult
	b.Browse("x", func(br BrowseResult) { res = br; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 0 {
		t.Fatalf("foreign-ID answer accepted: %v", res.URLs)
	}
}
