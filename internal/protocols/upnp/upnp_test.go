package upnp

import (
	"strings"
	"testing"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/simnet"
)

func TestDiscoverEndToEnd(t *testing.T) {
	sim := simnet.New()
	devNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")

	dev, err := NewDevice(devNode, "urn:printer", "http://10.0.0.7:5431/svc", 5431)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	cp := NewControlPoint(cliNode, WithMX(100*time.Millisecond))
	var res DiscoverResult
	done := false
	cp.Discover("urn:printer", func(r DiscoverResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.ServiceURLs) != 1 || res.ServiceURLs[0] != "http://10.0.0.7:5431/svc" {
		t.Fatalf("urls = %v", res.ServiceURLs)
	}
	if dev.SSDPAnswered() != 1 || dev.HTTPServed() != 1 {
		t.Fatalf("ssdp=%d http=%d", dev.SSDPAnswered(), dev.HTTPServed())
	}
	// The control point waits the full MX window (Cyberlink behaviour).
	if res.Elapsed < 100*time.Millisecond {
		t.Fatalf("elapsed = %v", res.Elapsed)
	}
}

func TestDiscoverDefaultMXIsOneSecond(t *testing.T) {
	sim := simnet.New()
	devNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")
	dev, err := NewDevice(devNode, "urn:printer", "http://10.0.0.7:5431/svc", 5431)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	cp := NewControlPoint(cliNode)
	var res DiscoverResult
	done := false
	cp.Discover("urn:printer", func(r DiscoverResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	// ~1 s MX + HTTP fetch: the effect behind Fig. 12(a)'s 1014 ms.
	if res.Elapsed < time.Second || res.Elapsed > time.Second+100*time.Millisecond {
		t.Fatalf("elapsed = %v, want ~1s", res.Elapsed)
	}
}

func TestDiscoverNoDevice(t *testing.T) {
	sim := simnet.New()
	cliNode, _ := sim.NewNode("10.0.0.1")
	cp := NewControlPoint(cliNode, WithMX(50*time.Millisecond))
	var res DiscoverResult
	done := false
	cp.Discover("urn:ghost", func(r DiscoverResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || len(res.ServiceURLs) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDescriptionXMLAndExtract(t *testing.T) {
	desc := DescriptionXML("My printer", "urn:printer", "http://10.0.0.7:5431/svc")
	if !strings.Contains(string(desc), "<friendlyName>My printer</friendlyName>") {
		t.Fatalf("desc = %s", desc)
	}
	base, err := ExtractURLBase(desc)
	if err != nil {
		t.Fatal(err)
	}
	if base != "http://10.0.0.7:5431/svc" {
		t.Fatalf("base = %q", base)
	}
	if _, err := ExtractURLBase([]byte("<root/>")); err == nil {
		t.Fatal("missing URLBase should fail")
	}
	if _, err := ExtractURLBase([]byte("<URLBase>x")); err == nil {
		t.Fatal("unterminated URLBase should fail")
	}
}

func TestSplitLocation(t *testing.T) {
	addr, path, err := SplitLocation("http://10.0.0.7:5431/desc.xml")
	if err != nil {
		t.Fatal(err)
	}
	if addr != (netapi.Addr{IP: "10.0.0.7", Port: 5431}) || path != "/desc.xml" {
		t.Fatalf("addr=%v path=%q", addr, path)
	}
	addr, path, err = SplitLocation("http://10.0.0.7/d")
	if err != nil || addr.Port != 80 || path != "/d" {
		t.Fatalf("addr=%v path=%q err=%v", addr, path, err)
	}
	if _, _, err := SplitLocation("ftp://x/"); err == nil {
		t.Fatal("non-http should fail")
	}
	if _, _, err := SplitLocation("http://h:bad/"); err == nil {
		t.Fatal("bad port should fail")
	}
}

func TestDeviceServes404ForOtherPaths(t *testing.T) {
	sim := simnet.New()
	devNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")
	dev, err := NewDevice(devNode, "urn:printer", "http://10.0.0.7:5431/svc", 5431)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	var status int
	conn, err := cliNode.DialStream(netapi.Addr{IP: "10.0.0.7", Port: 5431}, func(c netapi.Conn, data []byte) {
		if data != nil && strings.Contains(string(data), "404") {
			status = 404
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("GET /other HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(func() bool { return status == 404 }, time.Minute); err != nil {
		t.Fatal(err)
	}
}
