// Package upnp composes the SSDP and HTTP legacy stacks into full UPnP
// discovery roles: a Device (SSDP responder + HTTP description server)
// and a ControlPoint (M-SEARCH then description GET), standing in for
// the Cyberlink stack of the paper's case study (§V, DESIGN.md §5).
package upnp

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/protocols/httpx"
	"starlink/internal/protocols/ssdp"
)

// DefaultMX is the control point's search window — UPnP control points
// wait the full MX window before processing results; calibrated to the
// paper's Fig. 12(a) UPnP median of 1014 ms.
const DefaultMX = time.Second

// DescriptionPath is where devices serve their description document.
const DescriptionPath = "/desc.xml"

// DeviceOption configures a Device.
type DeviceOption func(*Device)

// WithSSDPDelay forwards a randomised response delay to the SSDP layer.
func WithSSDPDelay(min, max time.Duration, rng *rand.Rand) DeviceOption {
	return func(d *Device) { d.ssdpOpts = append(d.ssdpOpts, ssdp.WithResponseDelay(min, max, rng)) }
}

// Device is a legacy UPnP device: it answers SSDP searches with a
// LOCATION header pointing at its HTTP description, which carries the
// service URL in URLBase.
type Device struct {
	ssdp     *ssdp.Device
	http     *httpx.Server
	ssdpOpts []ssdp.DeviceOption
	// FriendlyName appears in the description document.
	FriendlyName string
}

// NewDevice starts a device serving the service type with the given
// control URL (URLBase) on httpPort.
func NewDevice(node netapi.Node, st, serviceURL string, httpPort int, opts ...DeviceOption) (*Device, error) {
	d := &Device{FriendlyName: "Starlink test device"}
	for _, o := range opts {
		o(d)
	}
	desc := DescriptionXML(d.FriendlyName, st, serviceURL)
	httpSrv, err := httpx.NewServer(node, httpPort, func(req *httpx.Request) (int, string, string, []byte) {
		if req.Method != "GET" || req.Path != DescriptionPath {
			return 404, "Not Found", "text/plain", []byte("not found")
		}
		return 200, "OK", "text/xml", desc
	})
	if err != nil {
		return nil, fmt.Errorf("upnp: device: %w", err)
	}
	location := fmt.Sprintf("http://%s:%d%s", node.IP(), httpPort, DescriptionPath)
	usn := "uuid:starlink-" + strings.ReplaceAll(st, ":", "-")
	ssdpDev, err := ssdp.NewDevice(node, st, location, usn, d.ssdpOpts...)
	if err != nil {
		_ = httpSrv.Close()
		return nil, fmt.Errorf("upnp: device: %w", err)
	}
	d.ssdp = ssdpDev
	d.http = httpSrv
	return d, nil
}

// Close stops both halves of the device.
func (d *Device) Close() error {
	err1 := d.ssdp.Close()
	err2 := d.http.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// SSDPAnswered reports how many searches the SSDP layer served.
func (d *Device) SSDPAnswered() int { return d.ssdp.Answered }

// HTTPServed reports how many description requests were served.
func (d *Device) HTTPServed() int { return d.http.Served }

// DescriptionXML renders the UPnP device description document. URLBase
// is the element the paper's Fig. 4 translation logic reads
// (HTTP_OK.URL_BASE feeds SLP_SrvReply.URL).
func DescriptionXML(friendlyName, st, urlBase string) []byte {
	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0"?>` + "\n")
	sb.WriteString(`<root xmlns="urn:schemas-upnp-org:device-1-0">` + "\n")
	sb.WriteString(" <specVersion><major>1</major><minor>0</minor></specVersion>\n")
	fmt.Fprintf(&sb, " <URLBase>%s</URLBase>\n", urlBase)
	sb.WriteString(" <device>\n")
	fmt.Fprintf(&sb, "  <deviceType>%s</deviceType>\n", st)
	fmt.Fprintf(&sb, "  <friendlyName>%s</friendlyName>\n", friendlyName)
	sb.WriteString("  <manufacturer>starlink-go</manufacturer>\n")
	sb.WriteString(" </device>\n")
	sb.WriteString("</root>\n")
	return []byte(sb.String())
}

// ExtractURLBase pulls the URLBase element out of a description
// document the way a legacy control point does.
func ExtractURLBase(desc []byte) (string, error) {
	s := string(desc)
	start := strings.Index(s, "<URLBase>")
	if start < 0 {
		return "", fmt.Errorf("upnp: description has no URLBase")
	}
	start += len("<URLBase>")
	end := strings.Index(s[start:], "</URLBase>")
	if end < 0 {
		return "", fmt.Errorf("upnp: unterminated URLBase")
	}
	return strings.TrimSpace(s[start : start+end]), nil
}

// ControlPointOption configures a ControlPoint.
type ControlPointOption func(*ControlPoint)

// WithMX overrides the search window.
func WithMX(d time.Duration) ControlPointOption {
	return func(cp *ControlPoint) { cp.mx = d }
}

// WithMXJitter perturbs the window by a uniform value in [-d/2, +d/2].
func WithMXJitter(d time.Duration, rng *rand.Rand) ControlPointOption {
	return func(cp *ControlPoint) { cp.jitter, cp.rng = d, rng }
}

// ControlPoint is a legacy UPnP discovery client.
type ControlPoint struct {
	node   netapi.Node
	cp     *ssdp.ControlPoint
	mx     time.Duration
	jitter time.Duration
	rng    *rand.Rand
}

// NewControlPoint creates a control point on the node.
func NewControlPoint(node netapi.Node, opts ...ControlPointOption) *ControlPoint {
	cp := &ControlPoint{node: node, cp: ssdp.NewControlPoint(node), mx: DefaultMX}
	for _, o := range opts {
		o(cp)
	}
	return cp
}

// DiscoverResult is delivered when discovery completes.
type DiscoverResult struct {
	// ServiceURLs are the URLBase values of every discovered device.
	ServiceURLs []string
	Elapsed     time.Duration
	Err         error
}

// Discover searches for the service type, retrieves each responder's
// description and extracts the service URLs.
func (cp *ControlPoint) Discover(st string, done func(DiscoverResult)) {
	start := cp.node.Now()
	mx := cp.mx
	if cp.jitter > 0 && cp.rng != nil {
		mx += time.Duration(cp.rng.Int63n(int64(cp.jitter))) - cp.jitter/2
	}
	cp.cp.Search(st, mx, func(results []ssdp.SearchResult, err error) {
		if err != nil {
			done(DiscoverResult{Err: err})
			return
		}
		if len(results) == 0 {
			done(DiscoverResult{Elapsed: cp.node.Now().Sub(start)})
			return
		}
		var urls []string
		remaining := len(results)
		for _, r := range results {
			addr, path, err := SplitLocation(r.Location)
			if err != nil {
				remaining--
				if remaining == 0 {
					done(DiscoverResult{ServiceURLs: urls, Elapsed: cp.node.Now().Sub(start)})
				}
				continue
			}
			httpx.Get(cp.node, addr, path, func(resp *httpx.Response, err error) {
				if err == nil && resp.Status == 200 {
					if base, berr := ExtractURLBase(resp.Body); berr == nil {
						urls = append(urls, base)
					}
				}
				remaining--
				if remaining == 0 {
					done(DiscoverResult{ServiceURLs: urls, Elapsed: cp.node.Now().Sub(start)})
				}
			})
		}
	})
}

// SplitLocation parses an http LOCATION URL into a dial address and
// path.
func SplitLocation(location string) (netapi.Addr, string, error) {
	rest, ok := strings.CutPrefix(location, "http://")
	if !ok {
		return netapi.Addr{}, "", fmt.Errorf("upnp: unsupported location %q", location)
	}
	hostport, path, found := strings.Cut(rest, "/")
	if !found {
		path = ""
	}
	host, portStr, found := strings.Cut(hostport, ":")
	if !found {
		portStr = "80"
	}
	var port int
	if _, err := fmt.Sscanf(portStr, "%d", &port); err != nil {
		return netapi.Addr{}, "", fmt.Errorf("upnp: bad port in %q", location)
	}
	return netapi.Addr{IP: host, Port: port}, "/" + path, nil
}
