package ssdp

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/simnet"
)

func TestMSearchRoundtrip(t *testing.T) {
	m := NewMSearch("urn:printer", 1)
	data := m.Marshal()
	text := string(data)
	if !strings.HasPrefix(text, "M-SEARCH * HTTP/1.1\r\n") {
		t.Fatalf("start line: %q", text)
	}
	if !strings.HasSuffix(text, "\r\n\r\n") {
		t.Fatalf("no blank line: %q", text)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsSearch() || back.Headers["ST"] != "urn:printer" || back.Headers["MX"] != "1" {
		t.Fatalf("back = %+v", back)
	}
}

func TestResponseRoundtrip(t *testing.T) {
	m := NewResponse("urn:printer", "http://10.0.0.7:5431/desc.xml", "uuid:x")
	back, err := Parse(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsResponse() {
		t.Fatal("not a response")
	}
	if back.Headers["LOCATION"] != "http://10.0.0.7:5431/desc.xml" {
		t.Fatalf("location = %q", back.Headers["LOCATION"])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"M-SEARCH * HTTP/1.1\r\nST: x\r\n", // no blank line
		"JUNK\r\n\r\n",                     // bad start line
		"M-SEARCH * HTTP/1.1\r\nBADLINE\r\n\r\n",
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestHeaderNamesCanonicalised(t *testing.T) {
	m, err := Parse([]byte("HTTP/1.1 200 OK\r\nlocation: http://x/\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Headers["LOCATION"] != "http://x/" {
		t.Fatalf("headers = %v", m.Headers)
	}
}

func TestSearchAgainstDevice(t *testing.T) {
	sim := simnet.New()
	devNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")

	dev, err := NewDevice(devNode, "urn:printer", "http://10.0.0.7:5431/desc.xml", "uuid:1")
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	cp := NewControlPoint(cliNode)
	var got []SearchResult
	done := false
	cp.Search("urn:printer", 100*time.Millisecond, func(r []SearchResult, err error) {
		if err != nil {
			t.Error(err)
		}
		got = r
		done = true
	})
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Location != "http://10.0.0.7:5431/desc.xml" {
		t.Fatalf("got = %+v", got)
	}
	if dev.Answered != 1 {
		t.Fatalf("answered = %d", dev.Answered)
	}
}

func TestDeviceAnswersSSDPAll(t *testing.T) {
	sim := simnet.New()
	devNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")
	dev, _ := NewDevice(devNode, "urn:printer", "http://x/", "uuid:1")
	cp := NewControlPoint(cliNode)
	done := false
	var got []SearchResult
	cp.Search("ssdp:all", 50*time.Millisecond, func(r []SearchResult, err error) { got = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || dev.Answered != 1 {
		t.Fatalf("got=%v answered=%d", got, dev.Answered)
	}
}

func TestDeviceIgnoresOtherST(t *testing.T) {
	sim := simnet.New()
	devNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")
	dev, _ := NewDevice(devNode, "urn:printer", "http://x/", "uuid:1")
	cp := NewControlPoint(cliNode)
	done := false
	var got []SearchResult
	cp.Search("urn:camera", 50*time.Millisecond, func(r []SearchResult, err error) { got = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || dev.Answered != 0 {
		t.Fatalf("got=%v answered=%d", got, dev.Answered)
	}
}

func TestDeviceResponseDelayWithinBounds(t *testing.T) {
	sim := simnet.New()
	devNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")
	rng := rand.New(rand.NewSource(5))
	if _, err := NewDevice(devNode, "urn:printer", "http://x/", "uuid:1",
		WithResponseDelay(280*time.Millisecond, 350*time.Millisecond, rng)); err != nil {
		t.Fatal(err)
	}
	start := sim.Now()
	var gotAt time.Duration
	sock, _ := cliNode.OpenUDP(0, func(pkt netapi.Packet) {
		if gotAt == 0 {
			gotAt = sim.Now().Sub(start)
		}
	})
	if err := sock.Send(netapi.Addr{IP: Group, Port: Port}, NewMSearch("urn:printer", 1).Marshal()); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if gotAt < 280*time.Millisecond || gotAt > 360*time.Millisecond {
		t.Fatalf("response at %v, want within delay bounds", gotAt)
	}
}

func TestDeviceIgnoresGarbage(t *testing.T) {
	sim := simnet.New()
	devNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")
	dev, _ := NewDevice(devNode, "urn:printer", "http://x/", "uuid:1")
	sock, _ := cliNode.OpenUDP(0, func(netapi.Packet) {})
	if err := sock.Send(netapi.Addr{IP: Group, Port: Port}, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if dev.Answered != 0 {
		t.Fatal("garbage must be ignored")
	}
}

func TestSearchCollectsMultipleDevices(t *testing.T) {
	sim := simnet.New()
	cliNode, _ := sim.NewNode("10.0.0.1")
	for i := 0; i < 3; i++ {
		devNode, _ := sim.NewNode("10.0.0.1" + string(rune('0'+i)))
		if _, err := NewDevice(devNode, "urn:printer", "http://dev/", "uuid:x"); err != nil {
			t.Fatal(err)
		}
	}
	cp := NewControlPoint(cliNode)
	done := false
	var got []SearchResult
	cp.Search("urn:printer", 50*time.Millisecond, func(r []SearchResult, err error) { got = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d responses, want 3", len(got))
	}
}
