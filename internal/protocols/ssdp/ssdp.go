// Package ssdp is a from-scratch legacy stack for the Simple Service
// Discovery Protocol — the text-based multicast half of UPnP discovery
// (paper Fig. 2). It stands in for the Cyberlink UPnP stack's SSDP
// layer (DESIGN.md §5).
package ssdp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"starlink/internal/netapi"
)

// Port and Group are the paper's Fig. 2 color attributes.
const (
	Port  = 1900
	Group = "239.255.255.250"
)

// Message is a parsed SSDP message: the start line plus headers.
type Message struct {
	// Method is "M-SEARCH" for searches or "HTTP/1.1" for responses
	// (the discriminator the paper's Fig. 11 rules switch on).
	Method  string
	URI     string
	Version string
	Headers map[string]string
}

// IsSearch reports whether the message is an M-SEARCH request.
func (m *Message) IsSearch() bool { return m.Method == "M-SEARCH" }

// IsResponse reports whether the message is a 200 OK response.
func (m *Message) IsResponse() bool { return m.Method == "HTTP/1.1" }

// Marshal renders the wire form.
func (m *Message) Marshal() []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s %s\r\n", m.Method, m.URI, m.Version)
	keys := make([]string, 0, len(m.Headers))
	for k := range m.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s: %s\r\n", k, m.Headers[k])
	}
	sb.WriteString("\r\n")
	return []byte(sb.String())
}

// Parse decodes an SSDP datagram.
func Parse(data []byte) (*Message, error) {
	text := string(data)
	head, _, found := strings.Cut(text, "\r\n\r\n")
	if !found {
		return nil, fmt.Errorf("ssdp: missing blank line")
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 {
		return nil, fmt.Errorf("ssdp: bad start line %q", lines[0])
	}
	m := &Message{Method: parts[0], URI: parts[1], Version: parts[2], Headers: map[string]string{}}
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		k, v, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("ssdp: bad header line %q", line)
		}
		m.Headers[strings.ToUpper(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return m, nil
}

// NewMSearch builds a search request for a service type.
func NewMSearch(st string, mxSeconds int) *Message {
	return &Message{
		Method: "M-SEARCH", URI: "*", Version: "HTTP/1.1",
		Headers: map[string]string{
			"HOST": fmt.Sprintf("%s:%d", Group, Port),
			"MAN":  `"ssdp:discover"`,
			"MX":   fmt.Sprintf("%d", mxSeconds),
			"ST":   st,
		},
	}
}

// NewResponse builds a 200 OK response advertising a device description
// location.
func NewResponse(st, location, usn string) *Message {
	return &Message{
		Method: "HTTP/1.1", URI: "200", Version: "OK",
		Headers: map[string]string{
			"CACHE-CONTROL": "max-age=1800",
			"LOCATION":      location,
			"ST":            st,
			"USN":           usn,
		},
	}
}

// DeviceOption configures a Device responder.
type DeviceOption func(*Device)

// WithResponseDelay makes the device answer after a uniform random
// delay in [min, max) — SSDP devices spread responses across the MX
// window; the bench harness calibrates this to the paper's ~300 ms
// bridge-observed latency (internal/bench/calibration.go).
func WithResponseDelay(min, max time.Duration, rng *rand.Rand) DeviceOption {
	return func(d *Device) { d.delayMin, d.delayMax, d.rng = min, max, rng }
}

// Device is the legacy SSDP responder half of a UPnP device.
type Device struct {
	node     netapi.Node
	sock     netapi.UDPSocket
	st       string
	location string
	usn      string
	delayMin time.Duration
	delayMax time.Duration
	rng      *rand.Rand

	// Answered counts searches served; used by tests.
	Answered int
}

// NewDevice starts answering M-SEARCH requests for the service type,
// advertising the given description location URL.
func NewDevice(node netapi.Node, st, location, usn string, opts ...DeviceOption) (*Device, error) {
	d := &Device{node: node, st: st, location: location, usn: usn}
	for _, o := range opts {
		o(d)
	}
	// The read loop may dispatch a packet before this constructor
	// finishes; the barrier orders the d.sock publication (and every
	// earlier field write) before the first onPacket runs.
	ready := make(chan struct{})
	sock, err := node.JoinGroup(netapi.Addr{IP: Group, Port: Port}, func(pkt netapi.Packet) {
		<-ready
		d.onPacket(pkt)
	})
	if err != nil {
		return nil, fmt.Errorf("ssdp: device: %w", err)
	}
	d.sock = sock
	close(ready)
	return d, nil
}

// Close stops the device.
func (d *Device) Close() error { return d.sock.Close() }

func (d *Device) onPacket(pkt netapi.Packet) {
	msg, err := Parse(pkt.Data)
	if err != nil || !msg.IsSearch() {
		return
	}
	st := msg.Headers["ST"]
	if st != d.st && st != "ssdp:all" {
		return
	}
	resp := NewResponse(d.st, d.location, d.usn).Marshal()
	send := func() {
		d.Answered++
		_ = d.sock.Send(pkt.From, resp)
	}
	if d.rng != nil && d.delayMax > d.delayMin {
		delay := d.delayMin + time.Duration(d.rng.Int63n(int64(d.delayMax-d.delayMin)))
		d.node.After(delay, send)
		return
	}
	if d.delayMin > 0 {
		d.node.After(d.delayMin, send)
		return
	}
	send()
}

// SearchResult is one device response to a search.
type SearchResult struct {
	ST       string
	Location string
	USN      string
	From     netapi.Addr
}

// ControlPoint is the legacy SSDP search client.
type ControlPoint struct {
	node netapi.Node
}

// NewControlPoint creates a search client on the node.
func NewControlPoint(node netapi.Node) *ControlPoint {
	return &ControlPoint{node: node}
}

// Search multicasts an M-SEARCH and collects responses for the MX
// window, then calls done with everything received (the Cyberlink
// behaviour: the full MX window is always waited).
func (cp *ControlPoint) Search(st string, mx time.Duration, done func([]SearchResult, error)) {
	var results []SearchResult
	sock, err := cp.node.OpenUDP(0, func(pkt netapi.Packet) {
		msg, err := Parse(pkt.Data)
		if err != nil || !msg.IsResponse() {
			return
		}
		results = append(results, SearchResult{
			ST:       msg.Headers["ST"],
			Location: msg.Headers["LOCATION"],
			USN:      msg.Headers["USN"],
			From:     pkt.From,
		})
	})
	if err != nil {
		done(nil, fmt.Errorf("ssdp: search: %w", err))
		return
	}
	mxSecs := int((mx + time.Second - 1) / time.Second)
	if mxSecs < 1 {
		mxSecs = 1
	}
	if err := sock.Send(netapi.Addr{IP: Group, Port: Port}, NewMSearch(st, mxSecs).Marshal()); err != nil {
		_ = sock.Close()
		done(nil, fmt.Errorf("ssdp: search: %w", err))
		return
	}
	cp.node.After(mx, func() {
		_ = sock.Close()
		done(results, nil)
	})
}
