package httpx

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/simnet"
)

func TestRequestRoundtrip(t *testing.T) {
	data := MarshalRequest("/desc.xml", "10.0.0.7:5431")
	req, err := ParseRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/desc.xml" || req.Version != "HTTP/1.1" {
		t.Fatalf("req = %+v", req)
	}
	if req.Headers["HOST"] != "10.0.0.7:5431" {
		t.Fatalf("host = %q", req.Headers["HOST"])
	}
}

func TestResponseRoundtrip(t *testing.T) {
	body := []byte("<root><URLBase>http://x/</URLBase></root>")
	data := MarshalResponse(200, "OK", "text/xml", body)
	resp, err := ParseResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.Reason != "OK" {
		t.Fatalf("resp = %+v", resp)
	}
	if !bytes.Equal(resp.Body, body) {
		t.Fatalf("body = %q", resp.Body)
	}
	if resp.Headers["CONTENT-LENGTH"] != "41" {
		t.Fatalf("content-length = %q", resp.Headers["CONTENT-LENGTH"])
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseRequest([]byte("GET /x HTTP/1.1\r\n")); err == nil {
		t.Error("missing blank line should fail")
	}
	if _, err := ParseRequest([]byte("BAD\r\n\r\n")); err == nil {
		t.Error("bad request line should fail")
	}
	if _, err := ParseResponse([]byte("NOTHTTP 200 OK\r\n\r\n")); err == nil {
		t.Error("bad status line should fail")
	}
	if _, err := ParseResponse([]byte("HTTP/1.1 abc OK\r\n\r\n")); err == nil {
		t.Error("bad status code should fail")
	}
}

func TestFrameLength(t *testing.T) {
	body := "0123456789"
	msg := "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n" + body
	// Needs more data until complete.
	for cut := 0; cut < len(msg); cut++ {
		n, err := FrameLength([]byte(msg[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("cut %d framed %d", cut, n)
		}
	}
	n, err := FrameLength([]byte(msg))
	if err != nil || n != len(msg) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// Pipelined second message is not included.
	n, _ = FrameLength([]byte(msg + "GET"))
	if n != len(msg) {
		t.Fatalf("pipelined n=%d", n)
	}
	// No Content-Length: header-only message.
	req := "GET / HTTP/1.1\r\n\r\n"
	n, _ = FrameLength([]byte(req))
	if n != len(req) {
		t.Fatalf("req n=%d", n)
	}
	if _, err := FrameLength([]byte("HTTP/1.1 200 OK\r\nContent-Length: nope\r\n\r\n")); err == nil {
		t.Fatal("bad content-length should fail")
	}
}

func TestServerAndGet(t *testing.T) {
	sim := simnet.New()
	srvNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")

	desc := []byte("<root><URLBase>http://10.0.0.7:5431/svc</URLBase></root>")
	srv, err := NewServer(srvNode, 5431, func(req *Request) (int, string, string, []byte) {
		if req.Path != "/desc.xml" {
			return 404, "Not Found", "text/plain", []byte("nope")
		}
		return 200, "OK", "text/xml", desc
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var resp *Response
	Get(cliNode, netapi.Addr{IP: "10.0.0.7", Port: 5431}, "/desc.xml", func(r *Response, err error) {
		if err != nil {
			t.Error(err)
		}
		resp = r
	})
	if err := sim.RunUntil(func() bool { return resp != nil }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !bytes.Equal(resp.Body, desc) {
		t.Fatalf("resp = %+v", resp)
	}
	if srv.Served != 1 {
		t.Fatalf("served = %d", srv.Served)
	}
}

func TestServer404(t *testing.T) {
	sim := simnet.New()
	srvNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")
	srv, _ := NewServer(srvNode, 5431, func(req *Request) (int, string, string, []byte) {
		return 404, "Not Found", "text/plain", []byte("x")
	})
	defer srv.Close()
	var resp *Response
	Get(cliNode, netapi.Addr{IP: "10.0.0.7", Port: 5431}, "/missing", func(r *Response, err error) { resp = r })
	if err := sim.RunUntil(func() bool { return resp != nil }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("status = %d", resp.Status)
	}
}

func TestServerBadRequest(t *testing.T) {
	sim := simnet.New()
	srvNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")
	srv, _ := NewServer(srvNode, 5431, func(req *Request) (int, string, string, []byte) {
		return 200, "OK", "text/plain", nil
	})
	defer srv.Close()
	var got []byte
	conn, err := cliNode.DialStream(netapi.Addr{IP: "10.0.0.7", Port: 5431}, func(c netapi.Conn, data []byte) {
		got = append(got, data...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("NONSENSE\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(func() bool { return len(got) > 0 }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "400 Bad Request") {
		t.Fatalf("got %q", got)
	}
}

func TestGetConnectionRefused(t *testing.T) {
	sim := simnet.New()
	cliNode, _ := sim.NewNode("10.0.0.1")
	called := false
	Get(cliNode, netapi.Addr{IP: "10.0.0.9", Port: 80}, "/", func(r *Response, err error) {
		if err == nil {
			t.Error("want error")
		}
		called = true
	})
	sim.RunToQuiescence()
	if !called {
		t.Fatal("callback not invoked")
	}
}

func TestServerHandlesChunkedDelivery(t *testing.T) {
	// A request arriving byte-by-byte must still be framed correctly.
	sim := simnet.New()
	srvNode, _ := sim.NewNode("10.0.0.7")
	cliNode, _ := sim.NewNode("10.0.0.1")
	srv, _ := NewServer(srvNode, 5431, func(req *Request) (int, string, string, []byte) {
		return 200, "OK", "text/plain", []byte("hi")
	})
	defer srv.Close()
	var got []byte
	conn, err := cliNode.DialStream(netapi.Addr{IP: "10.0.0.7", Port: 5431}, func(c netapi.Conn, data []byte) {
		got = append(got, data...)
	})
	if err != nil {
		t.Fatal(err)
	}
	req := MarshalRequest("/x", "h")
	for _, b := range req {
		if err := conn.Send([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.RunUntil(func() bool { return len(got) > 0 }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "200 OK") {
		t.Fatalf("got %q", got)
	}
}
