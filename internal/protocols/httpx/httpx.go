// Package httpx is a from-scratch minimal HTTP/1.1 stack for the
// description-retrieval leg of UPnP discovery (paper Fig. 3): a GET
// request answered by a 200 OK carrying the device description XML.
// It runs over netapi streams so it works identically on the simulator
// and on real TCP.
package httpx

import (
	"fmt"
	"strconv"
	"strings"

	"starlink/internal/netapi"
)

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Version string
	Headers map[string]string
}

// Response is a parsed HTTP response.
type Response struct {
	Status  int
	Reason  string
	Headers map[string]string
	Body    []byte
}

// MarshalRequest renders a GET request.
func MarshalRequest(path, host string) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "GET %s HTTP/1.1\r\n", path)
	fmt.Fprintf(&sb, "HOST: %s\r\n", host)
	sb.WriteString("\r\n")
	return []byte(sb.String())
}

// MarshalResponse renders a response with a body and Content-Length.
func MarshalResponse(status int, reason, contentType string, body []byte) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "HTTP/1.1 %d %s\r\n", status, reason)
	fmt.Fprintf(&sb, "Content-Type: %s\r\n", contentType)
	fmt.Fprintf(&sb, "Content-Length: %d\r\n", len(body))
	sb.WriteString("\r\n")
	out := []byte(sb.String())
	return append(out, body...)
}

// FrameLength reports the byte length of the first complete HTTP
// message in buf, or 0 if more data is needed.
func FrameLength(buf []byte) (int, error) {
	head, _, found := strings.Cut(string(buf), "\r\n\r\n")
	if !found {
		return 0, nil
	}
	headEnd := len(head) + 4
	bodyLen := 0
	for _, line := range strings.Split(head, "\r\n")[1:] {
		k, v, found := strings.Cut(line, ":")
		if !found {
			continue
		}
		if strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 0 {
				return 0, fmt.Errorf("httpx: bad Content-Length %q", v)
			}
			bodyLen = n
			break
		}
	}
	if len(buf) < headEnd+bodyLen {
		return 0, nil
	}
	return headEnd + bodyLen, nil
}

// ParseRequest decodes a complete request.
func ParseRequest(data []byte) (*Request, error) {
	head, _, found := strings.Cut(string(data), "\r\n\r\n")
	if !found {
		return nil, fmt.Errorf("httpx: missing blank line")
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 {
		return nil, fmt.Errorf("httpx: bad request line %q", lines[0])
	}
	r := &Request{Method: parts[0], Path: parts[1], Version: parts[2], Headers: map[string]string{}}
	for _, line := range lines[1:] {
		k, v, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("httpx: bad header %q", line)
		}
		r.Headers[strings.ToUpper(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return r, nil
}

// ParseResponse decodes a complete response.
func ParseResponse(data []byte) (*Response, error) {
	head, body, found := strings.Cut(string(data), "\r\n\r\n")
	if !found {
		return nil, fmt.Errorf("httpx: missing blank line")
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("httpx: bad status line %q", lines[0])
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("httpx: bad status %q", parts[1])
	}
	r := &Response{Status: status, Headers: map[string]string{}, Body: []byte(body)}
	if len(parts) == 3 {
		r.Reason = parts[2]
	}
	for _, line := range lines[1:] {
		k, v, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("httpx: bad header %q", line)
		}
		r.Headers[strings.ToUpper(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return r, nil
}

// Handler serves a request, returning status, reason, content type and
// body.
type Handler func(req *Request) (int, string, string, []byte)

// Server is a minimal HTTP server over netapi streams.
type Server struct {
	listener netapi.Closer
	addr     netapi.Addr
	// Served counts completed requests; used by tests.
	Served int
}

// NewServer starts serving on the port (0 = ephemeral is not supported
// here: devices advertise a fixed LOCATION port).
func NewServer(node netapi.Node, port int, handler Handler) (*Server, error) {
	s := &Server{addr: netapi.Addr{IP: node.IP(), Port: port}}
	buffers := map[netapi.Conn][]byte{}
	l, err := node.ListenStream(port, nil, func(c netapi.Conn, data []byte) {
		if data == nil {
			delete(buffers, c)
			return
		}
		buf := append(buffers[c], data...)
		for {
			n, err := FrameLength(buf)
			if err != nil || n == 0 {
				break
			}
			req, perr := ParseRequest(buf[:n])
			buf = buf[n:]
			if perr != nil {
				_ = c.Send(MarshalResponse(400, "Bad Request", "text/plain", []byte(perr.Error())))
				continue
			}
			status, reason, ctype, body := handler(req)
			s.Served++
			_ = c.Send(MarshalResponse(status, reason, ctype, body))
		}
		buffers[c] = buf
	})
	if err != nil {
		return nil, fmt.Errorf("httpx: server: %w", err)
	}
	s.listener = l
	return s, nil
}

// Addr returns the server's address.
func (s *Server) Addr() netapi.Addr { return s.addr }

// Close stops the server.
func (s *Server) Close() error { return s.listener.Close() }

// Get performs an HTTP GET and delivers the parsed response.
func Get(node netapi.Node, to netapi.Addr, path string, done func(*Response, error)) {
	var buf []byte
	finished := false
	conn, err := node.DialStream(to, func(c netapi.Conn, data []byte) {
		if finished {
			return
		}
		if data == nil {
			finished = true
			done(nil, fmt.Errorf("httpx: connection closed before response"))
			return
		}
		buf = append(buf, data...)
		n, err := FrameLength(buf)
		if err != nil {
			finished = true
			_ = c.Close()
			done(nil, err)
			return
		}
		if n == 0 {
			return
		}
		resp, perr := ParseResponse(buf[:n])
		finished = true
		_ = c.Close()
		done(resp, perr)
	})
	if err != nil {
		done(nil, err)
		return
	}
	if err := conn.Send(MarshalRequest(path, to.String())); err != nil {
		done(nil, err)
	}
}
