// Fixtures for lint:ignore suppression, exercised through the errcmp
// analyzer.
package suppress

import "errors"

var errSentinel = errors.New("sentinel")

// A directive on the line above suppresses, and the reason documents
// the exception.
func suppressedAbove(err error) bool {
	//lint:ignore errcmp io.EOF identity is the documented bufio contract
	return err == errSentinel
}

// Same line works too.
func suppressedSameLine(err error) bool {
	return err == errSentinel //lint:ignore errcmp identity is intended here
}

// Without a reason the directive is inert: the exception stays visible.
func noReason(err error) bool {
	//lint:ignore errcmp
	return err == errSentinel // want "use errors.Is"
}

// A directive for a different analyzer does not suppress.
func wrongAnalyzer(err error) bool {
	//lint:ignore leasecheck reason text
	return err == errSentinel // want "use errors.Is"
}

func unsuppressed(err error) bool {
	return err == errSentinel // want "use errors.Is"
}
