// Fixtures for the domaincheck analyzer: lease-flag binding and the
// serial dispatch domain.
package domaincheck

import (
	"starlink/internal/netapi"
)

type loop struct {
	retained bool
	node     netapi.Node
}

// Historical bug class (the lease-transfer TOCTOU): binding the flag
// to a struct field that may belong to the buffer's next lease by the
// time the dispatcher reads it back.
func dispatchSharedFlag(l *loop, buf *netapi.Buffer, h netapi.PacketHandler) {
	pkt := netapi.Packet{Data: buf.Bytes(), Buf: buf}
	pkt.BindLeaseFlag(&l.retained) // want "not a field or element"
	h(pkt)
}

func dispatchUnbound(buf *netapi.Buffer, h netapi.PacketHandler) {
	pkt := netapi.Packet{Data: buf.Bytes(), Buf: buf} // want "without BindLeaseFlag"
	h(pkt)
}

func bindAfterDispatch(buf *netapi.Buffer, h netapi.PacketHandler) {
	var retained bool
	pkt := netapi.Packet{Buf: buf}
	h(pkt)
	pkt.BindLeaseFlag(&retained) // want "after the packet was already dispatched"
}

// The sanctioned shape: frame-local flag, bound before dispatch.
func dispatchFrameLocal(buf *netapi.Buffer, h netapi.PacketHandler) {
	retained := false
	pkt := netapi.Packet{Data: buf.Bytes(), Buf: buf}
	pkt.BindLeaseFlag(&retained)
	h(pkt)
	if !retained {
		buf.Release()
	}
}

func literalDispatch(buf *netapi.Buffer, h netapi.PacketHandler) {
	h(netapi.Packet{Buf: buf}) // want "TakeLease in the handler will panic or race"
}

func bindStoredPointer(buf *netapi.Buffer, h netapi.PacketHandler, flag *bool) {
	pkt := netapi.Packet{Buf: buf}
	pkt.BindLeaseFlag(flag) // want "must be the address of a frame-local bool"
	h(pkt)
}

var globalFlag bool

func bindGlobalFlag(buf *netapi.Buffer, h netapi.PacketHandler) {
	pkt := netapi.Packet{Buf: buf}
	pkt.BindLeaseFlag(&globalFlag) // want "not local to the dispatching function"
	h(pkt)
}

// A Packet without Buf is heap-owned; no binding contract applies.
func heapPacketNeedsNoFlag(h netapi.PacketHandler, data []byte) {
	pkt := netapi.Packet{Data: data}
	h(pkt)
}

func newNode() netapi.Node { return nil }

// Endpoint callbacks on an undetached node run on its serial dispatch
// domain; a goroutine escapes the mutual exclusion that domain grants.
func spawnInUndetachedCallback(h func([]byte)) {
	node := newNode()
	_, _ = node.OpenUDP(0, func(pkt netapi.Packet) {
		go h(pkt.Data) // want "undetached node"
	})
}

func spawnInDetachedCallback(h func([]byte)) {
	node := netapi.Detach(newNode())
	_, _ = node.OpenUDP(0, func(pkt netapi.Packet) {
		go h(pkt.Data)
	})
}

func spawnDirectDetach(h func([]byte)) {
	_, _ = netapi.Detach(newNode()).OpenUDP(0, func(pkt netapi.Packet) {
		go h(pkt.Data)
	})
}

// Parameters are trusted: the caller may have detached already.
func paramReceiverTrusted(n netapi.Node, h func([]byte)) {
	_, _ = n.OpenUDP(0, func(pkt netapi.Packet) {
		go h(pkt.Data)
	})
}

// No goroutine, no complaint — serial work in the callback is the
// intended model.
func serialCallback(results *[]int) {
	node := newNode()
	_, _ = node.OpenUDP(0, func(pkt netapi.Packet) {
		*results = append(*results, len(pkt.Data))
	})
}

// ---------------------------------------------------------------------
// Fault-plane delivery shapes: the simnet fault injector schedules each
// delivery — original and injected duplicate — as its own deferred
// closure. The lease flag must live in THAT closure's frame, never
// shared between the two deliveries.
// ---------------------------------------------------------------------

func schedule(f func()) { f() }

// The sanctioned shape, mirroring simnet's scheduleUDPLocked: each
// scheduled delivery acquires its own buffer and binds its own
// frame-local flag, so the duplicate is a fully independent delivery.
func dupDeliveriesOwnFlags(h netapi.PacketHandler, data []byte) {
	deliver := func() {
		buf := netapi.NewBuffer()
		n := copy(buf.Backing(), data)
		buf.SetFilled(n)
		retained := false
		pkt := netapi.Packet{Data: buf.Bytes(), Buf: buf}
		pkt.BindLeaseFlag(&retained)
		h(pkt)
		if !retained {
			buf.Release()
		}
	}
	schedule(deliver) // original
	schedule(deliver) // injected duplicate
}

// Hoisting the flag out of the delivery closure shares one bool between
// the original and the injected duplicate: by the time the duplicate
// reads it back, it may hold the original handler's decision — the
// lease-transfer TOCTOU the frame-local rule exists to close.
func dupDeliveriesSharedFlag(h netapi.PacketHandler, buf *netapi.Buffer) {
	retained := false
	deliver := func() {
		pkt := netapi.Packet{Data: buf.Bytes(), Buf: buf}
		pkt.BindLeaseFlag(&retained) // want "not local to the dispatching function"
		h(pkt)
		if !retained {
			buf.Release()
		}
	}
	schedule(deliver)
	schedule(deliver)
}
