// Fixtures for the hotpathalloc analyzer: structural zero-alloc guard.
package hotpathalloc

import "fmt"

//starlink:hotpath
func sprintfOnHotPath(n int) string {
	return fmt.Sprintf("n=%d", n) // want "fmt.Sprintf on a //starlink:hotpath success path"
}

//starlink:hotpath
func concatOnHotPath(a, b string) string {
	return a + b // want "string concatenation"
}

// Constant folding keeps literal concatenation free.
//
//starlink:hotpath
func constConcat() string {
	return "slp" + "://"
}

//starlink:hotpath
func closureOnHotPath(ns []int) int {
	total := 0
	add := func(n int) { total += n } // want "closure capturing total"
	for _, n := range ns {
		add(n)
	}
	return total
}

//starlink:hotpath
func zeroCapAppend(ns []int) []int {
	var out []int
	for _, n := range ns {
		out = append(out, n) // want "append to out, which starts with no capacity"
	}
	return out
}

//starlink:hotpath
func emptyLitAppend(ns []int) []int {
	out := []int{}
	return append(out, ns...) // want "append to out"
}

//starlink:hotpath
func preallocatedAppend(ns []int) []int {
	out := make([]int, 0, len(ns))
	for _, n := range ns {
		out = append(out, n)
	}
	return out
}

//starlink:hotpath
func callerBuffer(dst []byte, b byte) []byte {
	return append(dst, b)
}

// Error construction sits on the failure path and may allocate.
//
//starlink:hotpath
func coldErrorPathAllowed(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative: %d", n)
	}
	return n * 2, nil
}

// Unannotated functions are out of scope no matter what they do.
func unannotated(a, b string) string {
	add := func(x string) string { return a + x }
	return fmt.Sprintf("%s", add(b))
}
