// Fixtures for the leasecheck analyzer: netapi buffer-lease ownership.
package leasecheck

import (
	"starlink/internal/netapi"
)

// Historical bug class: a read loop that leases a buffer and forgets
// to release it on the error return.
func leakOnErrorPath(read func([]byte) (int, error)) {
	buf := netapi.NewBuffer() // want "never released or transferred"
	n, err := read(buf.Backing())
	if err != nil {
		return // leaked
	}
	buf.SetFilled(n)
	buf.Release()
}

func releasedOnAllPaths(read func([]byte) (int, error)) {
	buf := netapi.NewBuffer()
	if _, err := read(buf.Backing()); err != nil {
		buf.Release()
		return
	}
	buf.Release()
}

func transferredToHandler(h func(*netapi.Buffer)) {
	buf := netapi.NewBuffer()
	h(buf) // ownership moves to h
}

func deferredRelease(read func([]byte) (int, error)) {
	buf := netapi.NewBuffer()
	defer buf.Release()
	_, _ = read(buf.Backing())
}

func useAfterRelease() []byte {
	buf := netapi.NewBuffer()
	buf.Release()
	return buf.Bytes() // want "use of buf after release"
}

func doubleRelease() {
	buf := netapi.NewBuffer()
	buf.Release()
	buf.Release() // want "released twice"
}

func discardedLease(pkt netapi.Packet) {
	pkt.TakeLease() // want "result of TakeLease discarded"
}

// The netengine transfer idiom: the lease rides the handler call.
func transferDirect(pkt netapi.Packet, h func([]byte, *netapi.Buffer)) {
	h(pkt.Data, pkt.TakeLease())
}

// TakeLease is nil for heap-owned packets; a nil check settles the
// no-lease path.
func takeLeaseNilRefined(pkt netapi.Packet) {
	lease := pkt.TakeLease()
	if lease != nil {
		lease.Release()
	}
}

func takeLeaseLeaked(pkt netapi.Packet, ok bool) {
	lease := pkt.TakeLease() // want "never released or transferred"
	if ok {
		return // leaked when ok
	}
	if lease != nil {
		lease.Release()
	}
}

var sink []byte

// Retaining Packet.Data without the lease: the read loop reuses the
// backing buffer under the retained slice.
func retainWithoutLease(pkt netapi.Packet) {
	sink = pkt.Data // want "without taking the packet's lease"
}

func retainOnChannel(ch chan []byte, pkt netapi.Packet) {
	ch <- pkt.Data // want "without taking the packet's lease"
}

type held struct {
	data  []byte
	lease *netapi.Buffer
}

// Retention WITH the lease is the sanctioned hand-off shape.
func retainWithLease(ch chan held, pkt netapi.Packet) {
	ch <- held{data: pkt.Data, lease: pkt.TakeLease()}
}

// Local copies die with the frame: not retention.
func localUseOnly(pkt netapi.Packet) int {
	data := pkt.Data
	return len(data)
}

// ---------------------------------------------------------------------
// Fault-plane delivery shapes: the simnet fault injector turns one send
// into zero (drop), one or two (duplicate) deliveries, each under the
// leased-delivery protocol. These fixtures pin that the injector's
// sanctioned shape stays clean and that the shortcuts it must not take
// keep being reported.
// ---------------------------------------------------------------------

// The simnet deliver shape: every delivery — original or injected
// duplicate — copies into its own pooled buffer and settles it with the
// lease-flag protocol. Ownership rides into the Packet literal; the
// conditional release is the dispatcher honoring an untaken lease.
func faultDeliverLeased(h netapi.PacketHandler, data []byte) {
	buf := netapi.NewBuffer()
	n := copy(buf.Backing(), data)
	buf.SetFilled(n)
	retained := false
	pkt := netapi.Packet{Data: buf.Bytes(), Buf: buf}
	pkt.BindLeaseFlag(&retained)
	h(pkt)
	if !retained {
		buf.Release()
	}
}

// The shortcut fault injection must not take: re-delivering the
// original's buffer for the duplicate after the original delivery
// settled its lease. The pool may have re-leased the backing array to
// another read loop by then.
func faultDupReusesReleased(h netapi.PacketHandler, data []byte, dup bool) {
	buf := netapi.NewBuffer()
	n := copy(buf.Backing(), data)
	buf.SetFilled(n)
	h(netapi.Packet{Data: buf.Bytes()})
	buf.Release()
	if dup {
		h(netapi.Packet{Data: buf.Bytes()}) // want "use of buf after release"
	}
}

// Dropping a delivery still owns the buffer it copied into: a fault
// verdict that returns early without releasing leaks the pool slot.
func faultDropLeaksBuffer(h netapi.PacketHandler, data []byte, dropped bool) {
	buf := netapi.NewBuffer() // want "never released or transferred"
	n := copy(buf.Backing(), data)
	buf.SetFilled(n)
	if dropped {
		return // leaked: the drop path forgot the release
	}
	h(netapi.Packet{Data: buf.Bytes(), Buf: buf})
}

// The sanctioned drop shape: the verdict releases before bailing.
func faultDropReleases(h netapi.PacketHandler, data []byte, dropped bool) {
	buf := netapi.NewBuffer()
	n := copy(buf.Backing(), data)
	buf.SetFilled(n)
	if dropped {
		buf.Release()
		return
	}
	h(netapi.Packet{Data: buf.Bytes(), Buf: buf})
}
