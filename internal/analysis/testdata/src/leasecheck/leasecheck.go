// Fixtures for the leasecheck analyzer: netapi buffer-lease ownership.
package leasecheck

import (
	"starlink/internal/netapi"
)

// Historical bug class: a read loop that leases a buffer and forgets
// to release it on the error return.
func leakOnErrorPath(read func([]byte) (int, error)) {
	buf := netapi.NewBuffer() // want "never released or transferred"
	n, err := read(buf.Backing())
	if err != nil {
		return // leaked
	}
	buf.SetFilled(n)
	buf.Release()
}

func releasedOnAllPaths(read func([]byte) (int, error)) {
	buf := netapi.NewBuffer()
	if _, err := read(buf.Backing()); err != nil {
		buf.Release()
		return
	}
	buf.Release()
}

func transferredToHandler(h func(*netapi.Buffer)) {
	buf := netapi.NewBuffer()
	h(buf) // ownership moves to h
}

func deferredRelease(read func([]byte) (int, error)) {
	buf := netapi.NewBuffer()
	defer buf.Release()
	_, _ = read(buf.Backing())
}

func useAfterRelease() []byte {
	buf := netapi.NewBuffer()
	buf.Release()
	return buf.Bytes() // want "use of buf after release"
}

func doubleRelease() {
	buf := netapi.NewBuffer()
	buf.Release()
	buf.Release() // want "released twice"
}

func discardedLease(pkt netapi.Packet) {
	pkt.TakeLease() // want "result of TakeLease discarded"
}

// The netengine transfer idiom: the lease rides the handler call.
func transferDirect(pkt netapi.Packet, h func([]byte, *netapi.Buffer)) {
	h(pkt.Data, pkt.TakeLease())
}

// TakeLease is nil for heap-owned packets; a nil check settles the
// no-lease path.
func takeLeaseNilRefined(pkt netapi.Packet) {
	lease := pkt.TakeLease()
	if lease != nil {
		lease.Release()
	}
}

func takeLeaseLeaked(pkt netapi.Packet, ok bool) {
	lease := pkt.TakeLease() // want "never released or transferred"
	if ok {
		return // leaked when ok
	}
	if lease != nil {
		lease.Release()
	}
}

var sink []byte

// Retaining Packet.Data without the lease: the read loop reuses the
// backing buffer under the retained slice.
func retainWithoutLease(pkt netapi.Packet) {
	sink = pkt.Data // want "without taking the packet's lease"
}

func retainOnChannel(ch chan []byte, pkt netapi.Packet) {
	ch <- pkt.Data // want "without taking the packet's lease"
}

type held struct {
	data  []byte
	lease *netapi.Buffer
}

// Retention WITH the lease is the sanctioned hand-off shape.
func retainWithLease(ch chan held, pkt netapi.Packet) {
	ch <- held{data: pkt.Data, lease: pkt.TakeLease()}
}

// Local copies die with the frame: not retention.
func localUseOnly(pkt netapi.Packet) int {
	data := pkt.Data
	return len(data)
}

// ---------------------------------------------------------------------
// Fault-plane delivery shapes: the simnet fault injector turns one send
// into zero (drop), one or two (duplicate) deliveries, each under the
// leased-delivery protocol. These fixtures pin that the injector's
// sanctioned shape stays clean and that the shortcuts it must not take
// keep being reported.
// ---------------------------------------------------------------------

// The simnet deliver shape: every delivery — original or injected
// duplicate — copies into its own pooled buffer and settles it with the
// lease-flag protocol. Ownership rides into the Packet literal; the
// conditional release is the dispatcher honoring an untaken lease.
func faultDeliverLeased(h netapi.PacketHandler, data []byte) {
	buf := netapi.NewBuffer()
	n := copy(buf.Backing(), data)
	buf.SetFilled(n)
	retained := false
	pkt := netapi.Packet{Data: buf.Bytes(), Buf: buf}
	pkt.BindLeaseFlag(&retained)
	h(pkt)
	if !retained {
		buf.Release()
	}
}

// The shortcut fault injection must not take: re-delivering the
// original's buffer for the duplicate after the original delivery
// settled its lease. The pool may have re-leased the backing array to
// another read loop by then.
func faultDupReusesReleased(h netapi.PacketHandler, data []byte, dup bool) {
	buf := netapi.NewBuffer()
	n := copy(buf.Backing(), data)
	buf.SetFilled(n)
	h(netapi.Packet{Data: buf.Bytes()})
	buf.Release()
	if dup {
		h(netapi.Packet{Data: buf.Bytes()}) // want "use of buf after release"
	}
}

// Dropping a delivery still owns the buffer it copied into: a fault
// verdict that returns early without releasing leaks the pool slot.
func faultDropLeaksBuffer(h netapi.PacketHandler, data []byte, dropped bool) {
	buf := netapi.NewBuffer() // want "never released or transferred"
	n := copy(buf.Backing(), data)
	buf.SetFilled(n)
	if dropped {
		return // leaked: the drop path forgot the release
	}
	h(netapi.Packet{Data: buf.Bytes(), Buf: buf})
}

// The sanctioned drop shape: the verdict releases before bailing.
func faultDropReleases(h netapi.PacketHandler, data []byte, dropped bool) {
	buf := netapi.NewBuffer()
	n := copy(buf.Backing(), data)
	buf.SetFilled(n)
	if dropped {
		buf.Release()
		return
	}
	h(netapi.Packet{Data: buf.Bytes(), Buf: buf})
}

// ---------------------------------------------------------------------
// Slab lease shapes: the batched read loop leases N buffers with one
// netapi.LeaseBatch call and settles the slab with one Batch.Release.
// Element operations — bufs[i] into a Packet, bufs[i] = nil, a
// bufs[i].Release() on a transferred-out element's new owner — are uses
// of the still-owned slab, never settlements of it.
// ---------------------------------------------------------------------

// Historical bug class transposed to slabs: a batched read loop that
// bails on a socket error without returning the slab to the pool.
func batchLeakOnErrorPath(fill func([]byte) (int, error)) {
	bufs := netapi.LeaseBatch(8) // want "never released or transferred"
	for i := range bufs {
		n, err := fill(bufs[i].Backing())
		if err != nil {
			return // leaked: eight pool slots gone
		}
		bufs[i].SetFilled(n)
	}
	bufs.Release()
}

func batchReleasedOnAllPaths(fill func([]byte) (int, error)) {
	bufs := netapi.LeaseBatch(8)
	if _, err := fill(bufs[0].Backing()); err != nil {
		bufs.Release()
		return
	}
	bufs.Release()
}

func batchDeferredRelease(fill func([]byte) (int, error)) {
	bufs := netapi.LeaseBatch(8)
	defer bufs.Release()
	_, _ = fill(bufs[0].Backing())
}

// Passing the slab whole moves ownership: the callee settles it.
func batchTransferred(drain func(netapi.Batch)) {
	bufs := netapi.LeaseBatch(8)
	drain(bufs)
}

// After the bulk release the slab variable is dead: its buffers are
// back in the pool and may already back another socket's reads.
func batchUseAfterRelease() []byte {
	bufs := netapi.LeaseBatch(4)
	bufs.Release()
	return bufs[0].Bytes() // want "use of bufs after release"
}

func batchDoubleRelease() {
	bufs := netapi.LeaseBatch(4)
	bufs.Release()
	bufs.Release() // want "released twice"
}

// The batched dispatch shape: each element rides into a Packet under
// the per-delivery lease-flag protocol, taken slots are nilled, the
// slab is refilled between rounds and bulk-released once at the end.
// Every element operation is a use of the owned slab; only the final
// Batch.Release settles it.
func batchDeliverAndRefill(h netapi.PacketHandler, rounds int) {
	bufs := netapi.LeaseBatch(4)
	for r := 0; r < rounds; r++ {
		for i := range bufs {
			retained := false
			pkt := netapi.Packet{Data: bufs[i].Bytes(), Buf: bufs[i]}
			pkt.BindLeaseFlag(&retained)
			h(pkt)
			if retained {
				bufs[i] = nil
			}
		}
		bufs.Refill()
	}
	bufs.Release()
}
