// Fixtures for the leasecheck analyzer: netapi buffer-lease ownership.
package leasecheck

import (
	"starlink/internal/netapi"
)

// Historical bug class: a read loop that leases a buffer and forgets
// to release it on the error return.
func leakOnErrorPath(read func([]byte) (int, error)) {
	buf := netapi.NewBuffer() // want "never released or transferred"
	n, err := read(buf.Backing())
	if err != nil {
		return // leaked
	}
	buf.SetFilled(n)
	buf.Release()
}

func releasedOnAllPaths(read func([]byte) (int, error)) {
	buf := netapi.NewBuffer()
	if _, err := read(buf.Backing()); err != nil {
		buf.Release()
		return
	}
	buf.Release()
}

func transferredToHandler(h func(*netapi.Buffer)) {
	buf := netapi.NewBuffer()
	h(buf) // ownership moves to h
}

func deferredRelease(read func([]byte) (int, error)) {
	buf := netapi.NewBuffer()
	defer buf.Release()
	_, _ = read(buf.Backing())
}

func useAfterRelease() []byte {
	buf := netapi.NewBuffer()
	buf.Release()
	return buf.Bytes() // want "use of buf after release"
}

func doubleRelease() {
	buf := netapi.NewBuffer()
	buf.Release()
	buf.Release() // want "released twice"
}

func discardedLease(pkt netapi.Packet) {
	pkt.TakeLease() // want "result of TakeLease discarded"
}

// The netengine transfer idiom: the lease rides the handler call.
func transferDirect(pkt netapi.Packet, h func([]byte, *netapi.Buffer)) {
	h(pkt.Data, pkt.TakeLease())
}

// TakeLease is nil for heap-owned packets; a nil check settles the
// no-lease path.
func takeLeaseNilRefined(pkt netapi.Packet) {
	lease := pkt.TakeLease()
	if lease != nil {
		lease.Release()
	}
}

func takeLeaseLeaked(pkt netapi.Packet, ok bool) {
	lease := pkt.TakeLease() // want "never released or transferred"
	if ok {
		return // leaked when ok
	}
	if lease != nil {
		lease.Release()
	}
}

var sink []byte

// Retaining Packet.Data without the lease: the read loop reuses the
// backing buffer under the retained slice.
func retainWithoutLease(pkt netapi.Packet) {
	sink = pkt.Data // want "without taking the packet's lease"
}

func retainOnChannel(ch chan []byte, pkt netapi.Packet) {
	ch <- pkt.Data // want "without taking the packet's lease"
}

type held struct {
	data  []byte
	lease *netapi.Buffer
}

// Retention WITH the lease is the sanctioned hand-off shape.
func retainWithLease(ch chan held, pkt netapi.Packet) {
	ch <- held{data: pkt.Data, lease: pkt.TakeLease()}
}

// Local copies die with the frame: not retention.
func localUseOnly(pkt netapi.Packet) int {
	data := pkt.Data
	return len(data)
}
