// Fixtures for the errcmp analyzer: sentinel matching discipline.
package errcmp

import (
	"errors"
	"strings"

	"starlink/internal/serrors"
)

var errLocal = errors.New("local sentinel")

func identityCompare(err error) bool {
	return err == serrors.ErrClosed // want "use errors.Is"
}

func identityCompareNeq(err error) bool {
	return err != serrors.ErrOverloaded // want "error compared with != against sentinel ErrOverloaded"
}

func localSentinel(err error) bool {
	return err == errLocal // want "against sentinel errLocal"
}

func switchOnIdentity(err error) string {
	switch err { // the tag itself is fine; the cases are not
	case serrors.ErrDraining: // want "switch on error identity against sentinel ErrDraining"
		return "draining"
	case nil:
		return "ok"
	}
	return "other"
}

func textCompare(err error) bool {
	return err.Error() == "connection closed" // want "comparing error text"
}

func textSearch(err error) bool {
	return strings.Contains(err.Error(), "closed") // want "matching error text with strings.Contains"
}

func textPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "slp:") // want "matching error text with strings.HasPrefix"
}

// The sanctioned forms.
func classified(err error) bool {
	return errors.Is(err, serrors.ErrClosed)
}

func nilCheck(err error) bool {
	return err == nil || err != nil
}

func stringCompareNotError(a, b string) bool {
	return a == b || strings.Contains(a, b)
}
