// Fixtures for the poolcheck analyzer: pooled message-tree ownership.
package poolcheck

import (
	"fmt"

	"starlink/internal/message"
)

// Historical bug class (found in the parser's repeat-group path): a
// pooled field acquired before a loop leaks when an iteration fails.
func leakOnErrorReturn(parse func() error, n int) error {
	group := message.NewField() // want "never released or transferred"
	group.Label = "Group"
	for i := 0; i < n; i++ {
		if err := parse(); err != nil {
			return fmt.Errorf("item %d: %w", i, err)
		}
	}
	group.Release()
	return nil
}

func releaseOnEveryPath(parse func() error) error {
	f := message.NewField()
	if err := parse(); err != nil {
		f.Release()
		return err
	}
	f.Release()
	return nil
}

// Attaching to a message transfers the field's lifetime.
func transferToMessage(msg *message.Message) {
	f := message.NewField()
	f.Label = "ST"
	msg.Add(f)
}

func messageLeak(validate func() error) error {
	m := message.NewPooled("SLP", "Request") // want "never released or transferred"
	if err := validate(); err != nil {
		return err // m leaked
	}
	m.Release()
	return nil
}

func useAfterRelease() int {
	m := message.NewPooled("SLP", "Request")
	m.Release()
	return m.Len() // want "use of m after release"
}

// Returning a pooled tree hands ownership to the caller.
func returnedTree() *message.Message {
	m := message.NewPooled("SSDP", "MSearch")
	return m
}

// Same-package constructors marked //starlink:returns-pooled carry
// ownership exactly like message.NewPooled.
//
//starlink:returns-pooled
func newRequest() *message.Message {
	return message.NewPooled("SLP", "Request")
}

//starlink:returns-pooled
func newRequestChecked(ok bool) (*message.Message, error) {
	if !ok {
		return nil, fmt.Errorf("not ok")
	}
	return message.NewPooled("SLP", "Request"), nil
}

func helperLeak(bad func() error) error {
	m := newRequest() // want "never released or transferred"
	if err := bad(); err != nil {
		return err // m leaked
	}
	m.Release()
	return nil
}

// The (T, error) constructor contract: on the err != nil edge nothing
// was acquired.
func errRefined() error {
	m, err := newRequestChecked(true)
	if err != nil {
		return err
	}
	m.Release()
	return nil
}
