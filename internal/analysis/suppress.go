package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Deliberate exceptions are suppressed — and thereby enumerated — with
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory: an ignore without one does not suppress, so
// every exception in the tree documents itself. `grep -rn lint:ignore`
// is the canonical exception inventory.

// suppressions maps file name → line → analyzer names ignored there.
type suppressions map[string]map[int]map[string]bool

// collectSuppressions scans the files' comments for lint:ignore
// directives. A directive suppresses matching diagnostics on its own
// line and on the following line.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				parts := strings.Fields(rest)
				if len(parts) < 2 {
					continue // no reason given: does not suppress
				}
				pos := fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup[pos.Filename] = byLine
				}
				for _, line := range [...]int{pos.Line, pos.Line + 1} {
					names := byLine[line]
					if names == nil {
						names = map[string]bool{}
						byLine[line] = names
					}
					names[parts[0]] = true
				}
			}
		}
	}
	return sup
}

func (s suppressions) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	byLine, ok := s[pos.Filename]
	if !ok {
		return false
	}
	names, ok := byLine[pos.Line]
	return ok && names[d.Analyzer]
}

// RunAnalyzers runs the given analyzers over one type-checked package,
// applies lint:ignore suppression, and returns the surviving
// diagnostics sorted by position.
func RunAnalyzers(pass *Pass, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := collectSuppressions(pass.Fset, pass.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		p := &Pass{
			Analyzer:  a,
			Fset:      pass.Fset,
			Files:     pass.Files,
			Pkg:       pass.Pkg,
			TypesInfo: pass.TypesInfo,
		}
		p.Report = func(d Diagnostic) {
			if !sup.suppressed(p.Fset, d) {
				diags = append(diags, d)
			}
		}
		if err := a.Run(p); err != nil {
			return nil, err
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
