package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrCmp enforces the serrors taxonomy discipline: errors that cross a
// package boundary are classified with serrors.Mark and matched with
// errors.Is, never by identity or by string. Concretely it flags:
//
//   - `err == ErrSentinel` / `err != ErrSentinel` where the sentinel is
//     a package-level error variable (identity breaks the moment anyone
//     wraps — which serrors.Mark does by construction);
//   - `switch err { case ErrSentinel: ... }` for the same reason;
//   - comparing or searching `err.Error()` text (string matching is
//     locale- and wording-fragile and defeats the taxonomy).
//
// Comparisons against nil are, of course, fine. The identity checks run
// on test files too: tests that assert on identity are exactly how
// wrapping regressions slip in. The text-matching checks skip _test.go
// files — asserting that a validation error's message mentions the
// offending model element is the sanctioned way to test diagnostics,
// and no sentinel exists per message.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc:  "errors are matched with errors.Is against taxonomy sentinels, never == or string comparison",
	Run:  runErrCmp,
}

func runErrCmp(pass *Pass) error {
	for _, f := range pass.analyzedFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkErrBinary(pass, n)
			case *ast.SwitchStmt:
				checkErrSwitch(pass, n)
			case *ast.CallExpr:
				checkErrStringMatch(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkErrBinary(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isErrorTextCall(pass, be.X) || isErrorTextCall(pass, be.Y) {
		if !inTestFile(pass, be.Pos()) {
			pass.Reportf(be.Pos(), "comparing error text from Error(); classify with serrors.Mark and test with errors.Is")
		}
		return
	}
	if isNilIdent(be.X) || isNilIdent(be.Y) {
		return
	}
	var sentinel *types.Var
	if s := sentinelErrorVar(pass, be.X); s != nil {
		sentinel = s
	} else if s := sentinelErrorVar(pass, be.Y); s != nil {
		sentinel = s
	}
	if sentinel == nil {
		return
	}
	if !isErrorType(pass.TypesInfo.Types[be.X].Type) || !isErrorType(pass.TypesInfo.Types[be.Y].Type) {
		return
	}
	op := "=="
	if be.Op == token.NEQ {
		op = "!="
	}
	pass.Reportf(be.Pos(), "error compared with %s against sentinel %s; use errors.Is so wrapped and serrors.Mark-ed errors still match", op, sentinel.Name())
}

func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || !isErrorType(tv.Type) {
		return
	}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s := sentinelErrorVar(pass, e); s != nil {
				pass.Reportf(e.Pos(), "switch on error identity against sentinel %s; use errors.Is so wrapped errors still match", s.Name())
			}
		}
	}
}

// checkErrStringMatch flags err.Error() flowing into a string
// comparison or substring search.
func checkErrStringMatch(pass *Pass, call *ast.CallExpr) {
	// strings.Contains / HasPrefix / HasSuffix / EqualFold with an
	// Error() result argument.
	if inTestFile(pass, call.Pos()) {
		return
	}
	for _, fn := range [...]string{"Contains", "HasPrefix", "HasSuffix", "EqualFold"} {
		if isPkgFunc(pass.TypesInfo, call, "strings", fn) {
			for _, a := range call.Args {
				if isErrorTextCall(pass, a) {
					pass.Reportf(call.Pos(), "matching error text with strings.%s; classify with serrors.Mark and test with errors.Is", fn)
				}
			}
			return
		}
	}
}

// inTestFile reports whether the position falls in a _test.go file.
func inTestFile(pass *Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// isErrorTextCall reports whether e is a call to the error method
// Error().
func isErrorTextCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && isErrorType(tv.Type)
}

// sentinelErrorVar returns the package-level error variable e refers
// to, or nil. Both bare identifiers (same package) and selector uses
// (pkg.ErrX) count.
func sentinelErrorVar(pass *Pass, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return true
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	// The error interface: exactly Error() string.
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Error" {
			return true
		}
	}
	return false
}
