package analysis

// A miniature analysistest: fixture packages under testdata/src/<name>
// carry `// want "regexp"` comments on the lines where an analyzer must
// report, and nothing anywhere else. Each fixture package is
// type-checked against the real module packages (netapi, message,
// serrors) through gc export data produced by `go list -export`, so
// the fixtures exercise exactly the types the analyzers key on.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureImporter lazily builds one shared importer with export data
// for the module packages fixtures may import plus their stdlib deps.
var fixtureImporter = sync.OnceValues(func() (exportImporter, error) {
	fset := token.NewFileSet()
	pkgs, err := listExports("../..",
		"starlink/internal/netapi",
		"starlink/internal/message",
		"starlink/internal/serrors",
		"errors", "fmt", "io", "os", "strings",
	)
	if err != nil {
		return exportImporter{}, err
	}
	return newExportImporter(fset, func(path string) (io.ReadCloser, error) {
		file, ok := pkgs[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}), nil
})

// fixtureFset is shared with fixtureImporter's FileSet deliberately
// NOT: positions of fixture files come from their own FileSet; the
// importer's FileSet only affects positions inside export data, which
// the analyzers never report against.

type wantDiag struct {
	file string
	line int
	re   *regexp.Regexp
	hits int
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// runFixture type-checks testdata/src/<dir>, runs the analyzer through
// RunAnalyzers (so lint:ignore suppression is part of what fixtures can
// assert), and diffs diagnostics against the `// want` expectations.
func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	imp, err := fixtureImporter()
	if err != nil {
		t.Fatalf("building fixture importer: %v", err)
	}
	root := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*wantDiag
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(root, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &wantDiag{file: path, line: i + 1, re: re})
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", root)
	}

	pkg, info, err := typecheck(fset, dir, files, imp)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	diags, err := RunAnalyzers(&Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hits++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if w.hits == 0 {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// listExports resolves patterns to export-data files, dir-relative.
func listExports(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

func TestLeaseCheckFixtures(t *testing.T)   { runFixture(t, LeaseCheck, "leasecheck") }
func TestPoolCheckFixtures(t *testing.T)    { runFixture(t, PoolCheck, "poolcheck") }
func TestDomainCheckFixtures(t *testing.T)  { runFixture(t, DomainCheck, "domaincheck") }
func TestErrCmpFixtures(t *testing.T)       { runFixture(t, ErrCmp, "errcmp") }
func TestHotPathAllocFixtures(t *testing.T) { runFixture(t, HotPathAlloc, "hotpathalloc") }
func TestSuppressionFixtures(t *testing.T)  { runFixture(t, ErrCmp, "suppress") }
func TestSuiteHasFiveAnalyzers(t *testing.T) {
	if n := len(Suite()); n != 5 {
		t.Fatalf("Suite() has %d analyzers, want 5", n)
	}
}
