// Package analysis is Starlink's static-analysis suite: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis (which the
// build environment does not vendor) plus the five project analyzers
// that machine-check the runtime's ownership and concurrency
// invariants:
//
//   - leasecheck: every Packet.TakeLease result is Released exactly
//     once on all control-flow paths, never used after release, and
//     Packet.Data is not retained past the handler without a lease;
//   - poolcheck: pooled message trees (message.NewPooled / NewField and
//     //starlink:returns-pooled helpers) reach a Release or transfer
//     ownership on every path, with no use-after-release;
//   - domaincheck: transport read loops bind a frame-local lease flag
//     before dispatching a leased packet (the PR 5 TOCTOU class), and
//     endpoint callbacks of undetached nodes spawn no goroutines;
//   - errcmp: cross-package errors are compared with errors.Is, never
//     == / != against sentinel variables or by matching Error() text;
//   - hotpathalloc: functions marked //starlink:hotpath are free of
//     fmt calls, non-constant string concatenation, capturing closures
//     and unbounded appends — the structural guard behind the
//     AllocsPerRun regression tests.
//
// The suite is exposed through cmd/starlink-vet, which runs standalone
// (starlink-vet ./...) and as a `go vet -vettool` backend. Deliberate
// exceptions are suppressed — and thereby enumerated — with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it; an ignore without a reason
// does not suppress.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run reports the analyzer's diagnostics through pass.Report.
	Run func(pass *Pass) error
	// SkipTests excludes *_test.go files from the analysis. The
	// ownership analyzers set it: tests deliberately probe the
	// ownership machinery (double-release panics, lease transfer
	// across goroutines) in ways that are wrong in production code.
	SkipTests bool
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Suite is the full starlink-vet analyzer suite, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		LeaseCheck,
		PoolCheck,
		DomainCheck,
		ErrCmp,
		HotPathAlloc,
	}
}

// ---------------------------------------------------------------------
// Type and AST helpers shared by the analyzers
// ---------------------------------------------------------------------

// namedType unwraps pointers and returns the named type's package path
// and name, or "" when the type is unnamed.
func namedType(t types.Type) (pkgPath, name string) {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// isMethodCall reports whether call invokes a method with the given
// name on a value whose (pointer-unwrapped) named type is
// pkgPath.typeName. It returns the receiver expression when it matches.
func isMethodCall(info *types.Info, call *ast.CallExpr, pkgPath, typeName, method string) (recv ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != method {
		return nil, false
	}
	selInfo, found := info.Selections[sel]
	if !found {
		return nil, false // qualified identifier, not a method
	}
	if selInfo.Kind() != types.MethodVal {
		return nil, false
	}
	p, n := namedType(selInfo.Recv())
	if p != pkgPath || n != typeName {
		return nil, false
	}
	return sel.X, true
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "fmt".Sprintf).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// calleeFunc resolves the called *types.Func of a call expression, or
// nil for calls through function values, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcDirectives returns the //starlink:* directive names attached to a
// function declaration's doc comment (e.g. "hotpath" for
// //starlink:hotpath).
func funcDirectives(decl *ast.FuncDecl) []string {
	if decl.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range decl.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//starlink:"); ok {
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				rest = rest[:i]
			}
			out = append(out, strings.TrimSpace(rest))
		}
	}
	return out
}

func hasDirective(decl *ast.FuncDecl, name string) bool {
	for _, d := range funcDirectives(decl) {
		if d == name {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file position is in a *_test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.File(f.Pos()).Name(), "_test.go")
}

// analyzedFiles returns the files the analyzer should inspect,
// honouring SkipTests.
func (p *Pass) analyzedFiles() []*ast.File {
	if !p.Analyzer.SkipTests {
		return p.Files
	}
	var out []*ast.File
	for _, f := range p.Files {
		if !isTestFile(p.Fset, f) {
			out = append(out, f)
		}
	}
	return out
}

// eachFuncDecl invokes fn for every function declaration with a body in
// the analyzed files.
func (p *Pass) eachFuncDecl(fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range p.analyzedFiles() {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}
