package analysis

import (
	"go/ast"
	"go/types"
)

// PoolCheck enforces the pooled-message ownership protocol of
// internal/message: every tree acquired from the pool —
// message.NewPooled, message.NewField, or a same-package helper marked
// //starlink:returns-pooled — reaches a Release or transfers ownership
// (is passed on, stored, returned) on every control-flow path, and is
// never used after a definite Release.
//
// Ownership transfer is generous by design: attaching a pooled field to
// a message (msg.Add(f), msg.Swap(f)) hands the field's lifetime to the
// message, and returning or storing a tree makes the recipient
// responsible. What the analyzer catches is the historical bug class
// where an early error return drops a freshly acquired tree on the
// floor, quietly shrinking the pool under load.
//
// Test files are skipped: message tests probe double-release recycling
// deliberately.
var PoolCheck = &Analyzer{
	Name:      "poolcheck",
	Doc:       "pooled message trees (message.NewPooled/NewField) are released or transferred on every path",
	SkipTests: true,
	Run:       runPoolCheck,
}

func runPoolCheck(pass *Pass) error {
	cfg := &ownConfig{
		isAcquire: func(pass *Pass, call *ast.CallExpr) (string, bool, bool) {
			if isPkgFunc(pass.TypesInfo, call, messagePath, "NewPooled") {
				return "pooled message from message.NewPooled", false, true
			}
			if isPkgFunc(pass.TypesInfo, call, messagePath, "NewField") {
				return "pooled field from message.NewField", false, true
			}
			if fn := calleeFunc(pass.TypesInfo, call); fn != nil && returnsPooled(pass, fn) {
				return "pooled value from " + fn.Name() + " (//starlink:returns-pooled)", false, true
			}
			return "", false, false
		},
		releaseMethod: "Release",
		releaseOn: func(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
			if recv, ok := isMethodCall(pass.TypesInfo, call, messagePath, "Message", "Release"); ok {
				return recv, ok
			}
			return isMethodCall(pass.TypesInfo, call, messagePath, "Field", "Release")
		},
	}
	runOwnership(pass, cfg)
	return nil
}

// returnsPooled reports whether fn is declared in the analyzed package
// with a //starlink:returns-pooled directive: a constructor helper
// whose result carries pool ownership exactly like message.NewPooled.
func returnsPooled(pass *Pass, fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg() != pass.Pkg {
		return false
	}
	decl := pass.funcDeclOf(fn)
	return decl != nil && hasDirective(decl, "returns-pooled")
}

// funcDeclOf finds the declaration of a function object in the pass's
// files, or nil when it is declared elsewhere (other package, or a
// body-less declaration).
func (p *Pass) funcDeclOf(fn *types.Func) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if p.TypesInfo.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}
