package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DomainCheck enforces the dispatch-domain contract of internal/netapi:
//
//  1. Read loops that build a leased netapi.Packet (a composite literal
//     with Buf set) must call BindLeaseFlag before the packet is handed
//     to any handler or its lease taken, and the bound flag must be the
//     address of a variable local to the dispatching function's frame.
//     Binding a struct field or captured variable reintroduces the
//     PR 5 TOCTOU: once the handler takes the lease, the new owner may
//     release and the pool may re-lease the buffer to another read loop
//     before the dispatcher inspects the flag, so any state not owned
//     by this frame can belong to the buffer's next life.
//
//  2. Endpoint callbacks registered on a node that was demonstrably NOT
//     detached (a local variable whose value never flowed through
//     netapi.Detach in the enclosing function) must not spawn
//     goroutines: undetached callbacks rely on the node's serial
//     dispatch domain for mutual exclusion, and a goroutine escapes it.
//     Receivers the analyzer cannot trace (struct fields, parameters)
//     are trusted — constructors like netengine.New detach once and
//     store the view.
//
// Test files are skipped: tests drive the dispatch machinery from
// outside and legitimately hold leases across goroutines.
var DomainCheck = &Analyzer{
	Name:      "domaincheck",
	Doc:       "BindLeaseFlag binds a frame-local flag before dispatch; undetached endpoint callbacks spawn no goroutines",
	SkipTests: true,
	Run:       runDomainCheck,
}

func runDomainCheck(pass *Pass) error {
	inspectBodies(pass, func(body *ast.BlockStmt) {
		checkLeaseBinding(pass, body)
	})
	checkUndetachedCallbacks(pass)
	return nil
}

// ---------------------------------------------------------------------
// Rule 1: BindLeaseFlag before dispatch, flag local to the frame
// ---------------------------------------------------------------------

// leasedPacket tracks one Packet-with-Buf variable in one function.
type leasedPacket struct {
	obj      *types.Var
	made     token.Pos // the composite-literal assignment
	bound    token.Pos // BindLeaseFlag call position, NoPos if none
	firstUse token.Pos // first dispatch-like use (call arg / TakeLease)
}

func checkLeaseBinding(pass *Pass, body *ast.BlockStmt) {
	pkts := map[*types.Var]*leasedPacket{}

	packetLitWithBuf := func(e ast.Expr) bool {
		cl, ok := ast.Unparen(e).(*ast.CompositeLit)
		if !ok {
			return false
		}
		if p, n := namedType(pass.TypesInfo.Types[cl].Type); p != netapiPath || n != "Packet" {
			return false
		}
		for _, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Buf" && !isNilIdent(kv.Value) {
					return true
				}
			}
		}
		return false
	}

	walkShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if i < len(n.Lhs) && packetLitWithBuf(r) {
					if v := lhsVar(pass, n.Lhs[i]); v != nil {
						pkts[v] = &leasedPacket{obj: v, made: r.Pos()}
					} else {
						// Leased literal assigned to a field or index:
						// nothing frame-local can ever be bound to it.
						pass.Reportf(r.Pos(), "leased Packet (Buf set) stored outside the dispatching frame before BindLeaseFlag")
					}
				}
			}
		case *ast.CallExpr:
			// A leased Packet literal passed directly to a call can never
			// have been bound.
			for _, a := range n.Args {
				if packetLitWithBuf(a) {
					pass.Reportf(a.Pos(), "leased Packet (Buf set) dispatched without BindLeaseFlag; TakeLease in the handler will panic or race")
				}
			}
			if recv, ok := isMethodCall(pass.TypesInfo, n, netapiPath, "Packet", "BindLeaseFlag"); ok {
				if lp := trackedPacket(pass, pkts, recv); lp != nil && lp.bound == token.NoPos {
					lp.bound = n.Pos()
				}
				if len(n.Args) == 1 {
					checkFlagArg(pass, body, n.Args[0])
				}
				return
			}
			if recv, ok := isMethodCall(pass.TypesInfo, n, netapiPath, "Packet", "TakeLease"); ok {
				if lp := trackedPacket(pass, pkts, recv); lp != nil && lp.firstUse == token.NoPos {
					lp.firstUse = n.Pos()
				}
				return
			}
			// Any other call taking a tracked packet is a dispatch.
			for _, a := range n.Args {
				if lp := trackedPacket(pass, pkts, a); lp != nil && lp.firstUse == token.NoPos {
					lp.firstUse = a.Pos()
				}
			}
		}
	})

	for _, lp := range pkts {
		switch {
		case lp.firstUse == token.NoPos:
			// Never dispatched in this function (e.g. returned): out of
			// scope for a frame-local binding rule.
		case lp.bound == token.NoPos:
			pass.Reportf(lp.made, "leased Packet dispatched without BindLeaseFlag; bind a frame-local flag before invoking the handler")
		case lp.bound > lp.firstUse:
			pass.Reportf(lp.bound, "BindLeaseFlag after the packet was already dispatched; the handler's TakeLease raced the binding")
		}
	}
}

func trackedPacket(pass *Pass, pkts map[*types.Var]*leasedPacket, e ast.Expr) *leasedPacket {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		return nil
	}
	return pkts[v]
}

// checkFlagArg verifies the BindLeaseFlag argument is &local where
// local is declared inside this function body.
func checkFlagArg(pass *Pass, body *ast.BlockStmt, arg ast.Expr) {
	ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		// Passing a stored *bool: its owner is unknowable here.
		pass.Reportf(arg.Pos(), "BindLeaseFlag argument must be the address of a frame-local bool (got a non-address expression)")
		return
	}
	id, ok := ast.Unparen(ue.X).(*ast.Ident)
	if !ok {
		pass.Reportf(arg.Pos(), "BindLeaseFlag flag must be a frame-local variable, not a field or element; shared state may belong to the buffer's next lease")
		return
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		v, _ = pass.TypesInfo.Defs[id].(*types.Var)
	}
	if v == nil || v.Pos() < body.Pos() || v.Pos() > body.End() {
		pass.Reportf(arg.Pos(), "BindLeaseFlag flag %s is not local to the dispatching function; the TOCTOU the flag exists to close reopens", id.Name)
	}
}

// ---------------------------------------------------------------------
// Rule 2: no goroutines in callbacks of demonstrably-undetached nodes
// ---------------------------------------------------------------------

// endpointMethods are the Node methods that register callbacks, with
// the indices of their callback parameters.
var endpointMethods = map[string][]int{
	"OpenUDP":      {1},
	"JoinGroup":    {1},
	"ListenStream": {1, 2},
	"DialStream":   {1},
	"After":        {1},
}

func checkUndetachedCallbacks(pass *Pass) {
	inspectBodies(pass, func(body *ast.BlockStmt) {
		// Locals whose value flowed through netapi.Detach in this body.
		detached := map[*types.Var]bool{}
		walkShallow(body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok || !isPkgFunc(pass.TypesInfo, call, netapiPath, "Detach") {
				return
			}
			for _, l := range as.Lhs {
				if v := lhsVar(pass, l); v != nil {
					detached[v] = true
				}
			}
		})

		walkShallow(body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			argIdxs, isEndpoint := endpointMethods[sel.Sel.Name]
			if !isEndpoint {
				return
			}
			// Receiver must be netapi.Node-ish (the interface itself or a
			// concrete node); key on the method's package of origin via
			// the selection to avoid matching unrelated OpenUDP methods.
			selInfo, found := pass.TypesInfo.Selections[sel]
			if !found || selInfo.Kind() != types.MethodVal {
				return
			}
			if !implementsNode(selInfo.Recv()) {
				return
			}
			// Direct Detach(...) receiver is fine.
			if recvCall, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok &&
				isPkgFunc(pass.TypesInfo, recvCall, netapiPath, "Detach") {
				return
			}
			// Only locals NOT assigned from Detach are demonstrably
			// undetached; fields/params/results are trusted.
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return
			}
			v, _ := pass.TypesInfo.Uses[id].(*types.Var)
			if v == nil || detached[v] {
				return
			}
			if v.Pos() < body.Pos() || v.Pos() > body.End() {
				// Parameters (declared in the FuncType, before the
				// body), captured and global variables: cannot tell
				// where the value came from, trust the caller.
				return
			}
			for _, ai := range argIdxs {
				if ai >= len(call.Args) {
					continue
				}
				lit, ok := ast.Unparen(call.Args[ai]).(*ast.FuncLit)
				if !ok {
					continue
				}
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if g, ok := m.(*ast.GoStmt); ok {
						pass.Reportf(g.Pos(), "goroutine spawned in an endpoint callback of undetached node %s; detach with netapi.Detach or stay on the serial dispatch domain", id.Name)
					}
					return true
				})
			}
		})
	})
}

// implementsNode reports whether t (or *t) is netapi.Node or implements
// its method set far enough to be a node view (has OpenUDP and
// DialStream).
func implementsNode(t types.Type) bool {
	if p, n := namedType(t); p == netapiPath && n == "Node" {
		return true
	}
	ms := types.NewMethodSet(t)
	if ptr, ok := t.(*types.Pointer); !ok {
		ms = types.NewMethodSet(types.NewPointer(t))
		_ = ptr
	}
	has := func(name string) bool {
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
		return false
	}
	return has("OpenUDP") && has("DialStream") && has("ListenStream")
}
