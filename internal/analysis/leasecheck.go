package analysis

import (
	"go/ast"
)

// Module-internal package paths the analyzers key on. The analyzers are
// project-specific by design: they check Starlink's own ownership
// protocol, not a general Go idiom.
const (
	netapiPath  = "starlink/internal/netapi"
	messagePath = "starlink/internal/message"
	serrorsPath = "starlink/internal/serrors"
)

// LeaseCheck enforces the buffer-lease ownership protocol of
// internal/netapi (see netapi.Buffer):
//
//   - every buffer acquired via netapi.NewBuffer or Packet.TakeLease is
//     Released exactly once on every control-flow path, or ownership is
//     transferred (passed to a call, stored, sent, returned);
//   - every slab acquired via netapi.LeaseBatch is settled the same
//     way: one Batch.Release on every path, or a transfer. Per-element
//     hand-offs (b[i] into a Packet, nil the slot, bulk-release the
//     rest) count as uses of the batch, not releases — the slab is
//     settled only by Batch.Release or by escaping whole;
//   - no use of a lease after a definite Release, and no double
//     Release — for batches that includes indexing a slab after the
//     bulk release returned its buffers to the pool;
//   - the result of TakeLease is never discarded — dropping it leaks
//     the pool slot;
//   - a handler that retains Packet.Data beyond the callback (stores it
//     into a struct, channel or goroutine) must take the packet's lease
//     in the same function, otherwise the dispatching read loop will
//     reuse the backing buffer under the retained slice.
//
// Test files are skipped: the netapi tests deliberately double-release
// and hold leases across goroutines to probe the panic machinery.
var LeaseCheck = &Analyzer{
	Name:      "leasecheck",
	Doc:       "netapi buffer leases are released exactly once on every path and Packet.Data is not retained without a lease",
	SkipTests: true,
	Run:       runLeaseCheck,
}

var leaseOwnConfig = &ownConfig{
	isAcquire: func(pass *Pass, call *ast.CallExpr) (string, bool, bool) {
		if isPkgFunc(pass.TypesInfo, call, netapiPath, "NewBuffer") {
			return "buffer leased by netapi.NewBuffer", false, true
		}
		if _, ok := isMethodCall(pass.TypesInfo, call, netapiPath, "Packet", "TakeLease"); ok {
			// TakeLease is nil for heap-owned packets (Buf == nil), so
			// nil checks on the result refine the state.
			return "lease taken by Packet.TakeLease", true, true
		}
		return "", false, false
	},
	releaseMethod: "Release",
	releaseOn: func(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
		return isMethodCall(pass.TypesInfo, call, netapiPath, "Buffer", "Release")
	},
}

// batchOwnConfig tracks slab leases (netapi.Batch) separately from
// single-buffer leases: the two Release methods have different receiver
// types, and element operations (b[i].Release, b[i] = nil) are uses of
// the slab rather than settlements of it.
var batchOwnConfig = &ownConfig{
	isAcquire: func(pass *Pass, call *ast.CallExpr) (string, bool, bool) {
		if isPkgFunc(pass.TypesInfo, call, netapiPath, "LeaseBatch") {
			return "batch leased by netapi.LeaseBatch", false, true
		}
		return "", false, false
	},
	releaseMethod: "Release",
	releaseOn: func(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
		return isMethodCall(pass.TypesInfo, call, netapiPath, "Batch", "Release")
	},
}

func runLeaseCheck(pass *Pass) error {
	runOwnership(pass, leaseOwnConfig)
	runOwnership(pass, batchOwnConfig)

	for _, f := range pass.analyzedFiles() {
		// Discarded TakeLease results: `pkt.TakeLease()` as a bare
		// statement leaks the buffer with no variable to ever release.
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := isMethodCall(pass.TypesInfo, call, netapiPath, "Packet", "TakeLease"); ok {
				pass.Reportf(call.Pos(), "result of TakeLease discarded; the lease can never be released")
			}
			return true
		})
	}

	checkDataRetention(pass)
	return nil
}

// checkDataRetention flags handlers that store pkt.Data somewhere
// longer-lived than the callback frame without taking the lease.
func checkDataRetention(pass *Pass) {
	inspectBodies(pass, func(body *ast.BlockStmt) {
		// Packet-typed variables visible in this body.
		tookLease := false
		type retention struct {
			pos ast.Expr
			how string
		}
		var retained []retention

		isPacketData := func(e ast.Expr) bool {
			sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Data" {
				return false
			}
			tv, ok := pass.TypesInfo.Types[sel.X]
			if !ok {
				return false
			}
			p, n := namedType(tv.Type)
			return p == netapiPath && n == "Packet"
		}

		walkShallow(body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				if _, ok := isMethodCall(pass.TypesInfo, n, netapiPath, "Packet", "TakeLease"); ok {
					tookLease = true
				}
			case *ast.CompositeLit:
				// Skip the dispatch side: building a Packet literal with
				// Data set is how read loops hand data IN.
				if p, name := namedType(pass.TypesInfo.Types[n].Type); p == netapiPath && name == "Packet" {
					return
				}
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isPacketData(v) {
						retained = append(retained, retention{v, "stored in a composite literal"})
					}
				}
			case *ast.SendStmt:
				if isPacketData(n.Value) {
					retained = append(retained, retention{n.Value, "sent on a channel"})
				}
			case *ast.AssignStmt:
				for i, r := range n.Rhs {
					if !isPacketData(r) {
						continue
					}
					if i < len(n.Lhs) && !isLocalLHS(pass, n.Lhs[i]) {
						retained = append(retained, retention{r, "assigned outside the callback frame"})
					}
				}
			case *ast.GoStmt:
				ast.Inspect(n.Call, func(m ast.Node) bool {
					if e, ok := m.(ast.Expr); ok && isPacketData(e) {
						retained = append(retained, retention{e, "captured by a goroutine"})
					}
					return true
				})
			}
		})

		if tookLease {
			return
		}
		for _, r := range retained {
			pass.Reportf(r.pos.Pos(), "Packet.Data %s without taking the packet's lease; the read loop will reuse the backing buffer", r.how)
		}
	})
}

// isLocalLHS reports whether the assignment target is a plain
// function-local variable (retention into locals is fine: the slice
// dies with the frame).
func isLocalLHS(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false // field, index, deref: longer-lived than the frame
	}
	return id.Name == "_" || lhsVar(pass, e) != nil
}
