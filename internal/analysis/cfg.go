package analysis

import (
	"go/ast"
	"go/token"
)

// The ownership analyzers (leasecheck, poolcheck) are path-sensitive:
// "released exactly once on all control-flow paths" cannot be checked
// on the syntax tree alone. This file builds a small intraprocedural
// control-flow graph good enough for straight-line Go: blocks of
// statements connected by edges, with condition information preserved
// on if-edges so the dataflow can refine facts like "v != nil" and
// "err != nil" per branch.
//
// Constructs the builder does not model — goto and labeled
// break/continue — mark the function unanalyzable; the analyzers then
// stay silent for it rather than guess. Plain break/continue, loops,
// switches, type switches and selects are modeled.

// cfgBlock is one basic block.
type cfgBlock struct {
	stmts []ast.Stmt
	succs []*cfgBlock

	// cond is the if-condition evaluated at the end of the block when
	// the block terminates in a two-way branch; succs[0] is then the
	// true edge and succs[1] the false edge.
	cond ast.Expr

	// returnStmt is set when the block ends the function via an
	// explicit return; end is set for the implicit fall-off-the-end
	// exit. Either way the block has no successors.
	returnStmt *ast.ReturnStmt
	end        token.Pos

	// visited is scratch space for the dataflow driver.
	index int
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	entry  *cfgBlock
	blocks []*cfgBlock
	// unanalyzable is set when the body uses control flow the builder
	// does not model (goto, labeled branches).
	unanalyzable bool
}

type cfgBuilder struct {
	g   *cfg
	cur *cfgBlock
	// loop stack for break/continue targets.
	loops []loopFrame
	// switchBreaks is the break-target stack for switch/select.
	switchBreaks []*cfgBlock
	endPos       token.Pos
}

type loopFrame struct {
	continueTo *cfgBlock
	breakTo    *cfgBlock
}

// buildCFG constructs the graph for a function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	g := &cfg{}
	b := &cfgBuilder{g: g, endPos: body.End()}
	b.cur = b.newBlock()
	g.entry = b.cur
	b.stmts(body.List)
	if b.cur != nil {
		b.cur.end = body.End()
	}
	for i, blk := range g.blocks {
		blk.index = i
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// link adds an edge cur→next; a nil cur (dead code after return/branch)
// is ignored.
func link(from, to *cfgBlock) {
	if from != nil && to != nil {
		from.succs = append(from.succs, to)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		if b.g.unanalyzable {
			return
		}
		b.stmt(s)
	}
}

func (b *cfgBuilder) emit(s ast.Stmt) {
	if b.cur != nil {
		b.cur.stmts = append(b.cur.stmts, s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		b.emit(s)
		if b.cur != nil {
			b.cur.returnStmt = s
		}
		b.cur = nil

	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		condBlk := b.cur
		if condBlk == nil {
			return
		}
		condBlk.cond = s.Cond
		thenBlk := b.newBlock()
		link(condBlk, thenBlk) // succs[0] = true edge
		b.cur = thenBlk
		b.stmts(s.Body.List)
		thenEnd := b.cur

		var elseEnd *cfgBlock
		elseBlk := b.newBlock()
		link(condBlk, elseBlk) // succs[1] = false edge
		b.cur = elseBlk
		if s.Else != nil {
			b.stmt(s.Else)
		}
		elseEnd = b.cur

		join := b.newBlock()
		link(thenEnd, join)
		link(elseEnd, join)
		b.cur = join
		if thenEnd == nil && elseEnd == nil {
			b.cur = nil // both arms exited
		}

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		link(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			head.cond = s.Cond
			link(head, body)  // true
			link(head, after) // false
		} else {
			link(head, body)
		}
		post := b.newBlock()
		b.loops = append(b.loops, loopFrame{continueTo: post, breakTo: after})
		b.cur = body
		b.stmts(s.Body.List)
		link(b.cur, post)
		if s.Post != nil {
			save := b.cur
			b.cur = post
			b.stmt(s.Post)
			b.cur = save
		}
		link(post, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
		if s.Cond == nil && !b.hasBreak(s.Body) {
			// for {} without break never reaches after; keep the block
			// (it is simply unreachable from entry).
			b.cur = after
		}

	case *ast.RangeStmt:
		head := b.newBlock()
		link(b.cur, head)
		// Record the range expression (and key/value assignment) as a
		// statement so uses of tracked values in it are observed.
		head.stmts = append(head.stmts, s)
		body := b.newBlock()
		after := b.newBlock()
		link(head, body)
		link(head, after)
		b.loops = append(b.loops, loopFrame{continueTo: head, breakTo: after})
		b.cur = body
		b.stmts(s.Body.List)
		link(b.cur, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.emit(&ast.ExprStmt{X: s.Tag})
		}
		b.switchCases(s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(s.Assign.(ast.Stmt))
		b.switchCases(s.Body.List, nil)

	case *ast.SelectStmt:
		b.switchCases(s.Body.List, nil)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			b.g.unanalyzable = true
		case token.BREAK:
			if s.Label != nil {
				b.g.unanalyzable = true
				return
			}
			if len(b.switchBreaks) > 0 {
				link(b.cur, b.switchBreaks[len(b.switchBreaks)-1])
			} else if len(b.loops) > 0 {
				link(b.cur, b.loops[len(b.loops)-1].breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			if s.Label != nil {
				b.g.unanalyzable = true
				return
			}
			if len(b.loops) > 0 {
				link(b.cur, b.loops[len(b.loops)-1].continueTo)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// handled by switchCases via edge to the next case body.
		}

	case *ast.LabeledStmt:
		// A label is only a problem when branched to; goto/labeled
		// branches already bail out, so analyze the labeled statement
		// itself.
		b.stmt(s.Stmt)

	case *ast.ExprStmt:
		b.emit(s)
		if isPanicExit(s.X) {
			b.cur = nil // panic / os.Exit: path ends, no leak check
		}

	default:
		// Assignments, declarations, defer, go, send, incdec, empty:
		// straight-line statements.
		b.emit(s)
	}
}

// switchCases builds branches for switch / type-switch / select bodies.
func (b *cfgBuilder) switchCases(clauses []ast.Stmt, _ *cfgBlock) {
	head := b.cur
	after := b.newBlock()
	b.switchBreaks = append(b.switchBreaks, after)
	hasDefault := false
	var bodies []*cfgBlock
	var ends []*cfgBlock
	var fallsThrough []bool
	for _, c := range clauses {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				if head != nil {
					head.stmts = append(head.stmts, &ast.ExprStmt{X: e})
				}
			}
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else if head != nil {
				head.stmts = append(head.stmts, cc.Comm)
			}
			list = cc.Body
		}
		body := b.newBlock()
		bodies = append(bodies, body)
		link(head, body)
		b.cur = body
		b.stmts(list)
		ft := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				ft = true
			}
		}
		fallsThrough = append(fallsThrough, ft)
		ends = append(ends, b.cur)
		link(b.cur, after)
	}
	for i, ft := range fallsThrough {
		if ft && i+1 < len(bodies) {
			link(ends[i], bodies[i+1])
		}
	}
	if !hasDefault {
		link(head, after) // no case taken
	}
	b.switchBreaks = b.switchBreaks[:len(b.switchBreaks)-1]
	b.cur = after
}

// hasBreak reports whether the statement list contains a plain break at
// this loop's level. Only used to decide reachability of for{} exits.
func (b *cfgBuilder) hasBreak(body *ast.BlockStmt) bool {
	found := false
	depth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			depth++
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && depth == 0 {
				found = true
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return found
}

// isPanicExit reports whether the expression unconditionally ends the
// path: a call to panic or os.Exit (testing.T Fatal* methods would need
// type info; tests are skipped by the ownership analyzers anyway).
func isPanicExit(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}
