package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// go vet -vettool support. cmd/go drives an external vet tool through a
// small protocol (the one golang.org/x/tools/go/analysis/unitchecker
// implements; re-implemented here because x/tools is not vendored):
//
//   - `tool -V=full` prints a version line that cmd/go hashes into the
//     build cache key. The first field must be the tool's base name and
//     the second "version"; this tool appends a digest of its own
//     binary so the cache invalidates when the tool is rebuilt.
//   - `tool -flags` prints a JSON description of the tool's flags;
//     this suite has none, so it prints an empty array.
//   - `tool <dir>/vet.cfg` analyzes one compiled package: the JSON cfg
//     names the source files and maps every import to the gc export
//     file cmd/go already built. Diagnostics go to stderr in
//     file:line:col form; exit status 2 means findings. The tool must
//     write the (here: empty) facts file named by VetxOutput — cmd/go
//     treats a missing output as a failed action.

// vetConfig mirrors the JSON cmd/go writes to vet.cfg.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/starlink-vet. It dispatches between
// the vettool protocol and standalone `starlink-vet [packages]` mode,
// returning the process exit code.
func Main(args []string) int {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			name := "starlink-vet"
			if exe, err := os.Executable(); err == nil {
				name = filepath.Base(exe)
			}
			fmt.Printf("%s version devel-%s\n", name, selfDigest())
			return 0
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0])
	}
	return standalone(args)
}

// selfDigest hashes the tool's own binary so the -V output — and with
// it cmd/go's cache key — changes whenever the tool is rebuilt.
func selfDigest() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	pkgs, err := LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlink-vet:", err)
		return 1
	}
	found := false
	for _, p := range pkgs {
		diags, err := RunAnalyzers(&Pass{Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, TypesInfo: p.Info}, Suite())
		if err != nil {
			fmt.Fprintf(os.Stderr, "starlink-vet: %s: %v\n", p.ImportPath, err)
			return 1
		}
		for _, d := range diags {
			printDiag(p.Fset, d)
			found = true
		}
	}
	if found {
		return 2
	}
	return 0
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlink-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "starlink-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite exports no facts, so dependency-only invocations have
	// nothing to compute — but the output file must exist either way.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "starlink-vet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "starlink-vet:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := newExportImporter(fset, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, info, err := typecheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "starlink-vet:", err)
		return 1
	}
	diags, err := RunAnalyzers(&Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "starlink-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		printDiag(fset, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func printDiag(fset *token.FileSet, d Diagnostic) {
	fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
}
