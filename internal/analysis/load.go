package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Standalone package loading. The build environment does not vendor
// golang.org/x/tools, so instead of go/packages this loader shells out
// to the go command itself: `go list -export -deps -json` compiles (or
// pulls from the build cache) gc export data for every dependency, and
// the target packages are then type-checked from parsed source with
// the gc importer resolving imports through those export files. The
// result is the same *types.Package / types.Info view go/packages
// would produce, with zero dependencies beyond the toolchain.
//
// Standalone mode analyzes non-test files only; `go vet -vettool`
// (which hands the tool test variants too) covers _test.go files.

// LoadedPackage is one type-checked target package.
type LoadedPackage struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// listPackages runs `go list -export -deps` in dir and decodes every
// package (targets and dependencies) it reports.
func listPackages(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		q := p
		pkgs = append(pkgs, &q)
	}
	return pkgs, nil
}

// LoadPackages loads and type-checks the packages matching patterns,
// working in dir (the module root or below).
func LoadPackages(dir string, patterns []string) ([]*LoadedPackage, error) {
	pkgs, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Name != "" {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var out2 []*LoadedPackage
	for _, t := range targets {
		lp, err := typecheckListed(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out2 = append(out2, lp)
	}
	return out2, nil
}

func typecheckListed(fset *token.FileSet, imp types.Importer, t *listedPackage) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		files = append(files, f)
	}
	pkg, info, err := typecheck(fset, t.ImportPath, files, imp)
	if err != nil {
		return nil, err
	}
	return &LoadedPackage{ImportPath: t.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// typecheck runs go/types over parsed files with the given importer.
func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return pkg, info, nil
}

// exportImporter resolves imports from gc export data via a lookup
// function, special-casing unsafe (which has no export file). The
// underlying gc importer is created once so its package cache keeps
// type identity consistent across files and target packages.
type exportImporter struct {
	under types.Importer
}

func newExportImporter(fset *token.FileSet, lookup func(path string) (io.ReadCloser, error)) exportImporter {
	return exportImporter{under: importer.ForCompiler(fset, "gc", lookup)}
}

func (e exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.under.Import(path)
}
