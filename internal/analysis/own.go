package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ownership dataflow shared by leasecheck and poolcheck.
//
// An *acquisition* binds a local variable to an owned pooled resource
// (a buffer lease, a pooled message tree). The owner must, on every
// control-flow path, either call the resource's Release method exactly
// once or *transfer* ownership: pass the value to another function,
// store it into a struct/slice/map/channel, or return it. Using the
// value after a definite Release is an error; releasing twice is an
// error.
//
// The analysis is a forward may/must dataflow over the function's CFG
// with one state per acquisition:
//
//	ownNone     nothing owned on this path (nil result, reassigned)
//	ownOwned    definitely owned, not yet released/transferred
//	ownReleased definitely released
//	ownEscaped  ownership transferred; the value is out of our hands
//	ownMaybe    owned on some predecessor paths but not others
//
// Branch conditions refine facts: on the false edge of `v == nil` the
// value is owned, on the true edge there is nothing to release; when an
// acquisition comes from a (T, error) call, `err != nil` implies the
// resource was not acquired (the idiomatic constructor contract).

type ownState uint8

const (
	ownNone ownState = iota
	ownOwned
	ownReleased
	ownEscaped
	ownMaybe
)

func joinOwn(a, b ownState) ownState {
	if a == b {
		return a
	}
	// None+Released: both "nothing left to do" — quiet.
	if (a == ownNone && b == ownReleased) || (a == ownReleased && b == ownNone) {
		return ownReleased
	}
	// Escaped joined with anything non-owned stays quiet.
	if (a == ownEscaped && b != ownOwned && b != ownMaybe) ||
		(b == ownEscaped && a != ownOwned && a != ownMaybe) {
		return ownEscaped
	}
	return ownMaybe
}

// ownConfig parameterises the dataflow for one analyzer.
type ownConfig struct {
	// isAcquire reports whether the call acquires an owned resource,
	// returning a short description for diagnostics. multi reports
	// whether the acquisition may legitimately return nil (so nil
	// checks and (T, error) forms refine it).
	isAcquire func(pass *Pass, call *ast.CallExpr) (what string, mayBeNil bool, ok bool)
	// releaseMethod is the method name that consumes the resource.
	releaseMethod string
	// releaseOn verifies the receiver type of a releaseMethod call
	// really is the tracked resource type.
	releaseOn func(pass *Pass, call *ast.CallExpr) (recv ast.Expr, ok bool)
}

// acquisition is one tracked owned value in one function.
type acquisition struct {
	obj  *types.Var // the variable bound to the resource
	pos  token.Pos  // acquisition site
	what string
	// errObj pairs the acquisition with the error result of a
	// (T, error) call, enabling err-based branch refinement.
	errObj *types.Var
	// mayBeNil enables nil-based branch refinement.
	mayBeNil bool
	// deferRelease is set when a `defer v.Release()` guarantees the
	// exit-time release.
	deferRelease bool
	// reported de-duplicates exit diagnostics per acquisition.
	reportedLeak bool
}

// runOwnership analyzes every function body in the pass under cfgOwn.
func runOwnership(pass *Pass, cfg *ownConfig) {
	inspectBodies(pass, func(body *ast.BlockStmt) {
		analyzeOwnership(pass, cfg, body)
	})
}

// inspectBodies visits every function body — declarations and function
// literals — in the analyzed files. Literals are analyzed as their own
// scope: values acquired inside a literal must be settled inside it,
// and values captured from the enclosing function are treated as
// escaped there (the closure capture is a use the intraprocedural
// analysis cannot follow).
func inspectBodies(pass *Pass, fn func(body *ast.BlockStmt)) {
	for _, f := range pass.analyzedFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
				return true // visit nested literals too
			case *ast.FuncLit:
				fn(n.Body)
				return true
			}
			return true
		})
	}
}

func analyzeOwnership(pass *Pass, cfg *ownConfig, body *ast.BlockStmt) {
	acqs := findAcquisitions(pass, cfg, body)
	if len(acqs) == 0 {
		return
	}
	g := buildCFG(body)
	if g.unanalyzable {
		return // goto / labeled branches: stay silent rather than guess
	}

	// Iterate to fixpoint: per-block input states, one vector entry per
	// acquisition.
	n := len(g.blocks)
	in := make([][]ownState, n)
	for i := range in {
		in[i] = make([]ownState, len(acqs))
	}
	// seen marks blocks that have received any input yet.
	seen := make([]bool, n)
	seen[g.entry.index] = true

	type edgeFact struct {
		acq   int
		state ownState
	}
	// worklist of block indices.
	work := []int{g.entry.index}
	inWork := make([]bool, n)
	inWork[g.entry.index] = true

	// one extra pass to emit diagnostics only after the fixpoint.
	for emit := 0; emit < 2; emit++ {
		reporting := emit == 1
		if reporting {
			// Re-seed a full sweep in reverse-postorder-ish (index) order.
			work = work[:0]
			for i := range g.blocks {
				if seen[i] {
					work = append(work, i)
				}
			}
		}
		for len(work) > 0 {
			bi := work[0]
			work = work[1:]
			inWork[bi] = false
			blk := g.blocks[bi]
			st := make([]ownState, len(acqs))
			copy(st, in[bi])

			for _, s := range blk.stmts {
				transferStmt(pass, cfg, acqs, st, s, reporting)
			}
			if blk.returnStmt != nil || blk.end != token.NoPos {
				if reporting {
					reportExit(pass, acqs, st, blk)
				}
				continue
			}

			for si, succ := range blk.succs {
				out := make([]ownState, len(st))
				copy(out, st)
				if blk.cond != nil && si < 2 {
					refineCond(pass, acqs, out, blk.cond, si == 0)
				}
				if reporting {
					continue
				}
				changed := false
				if !seen[succ.index] {
					copy(in[succ.index], out)
					seen[succ.index] = true
					changed = true
				} else {
					for i := range out {
						j := joinOwn(in[succ.index][i], out[i])
						if j != in[succ.index][i] {
							in[succ.index][i] = j
							changed = true
						}
					}
				}
				if changed && !inWork[succ.index] {
					work = append(work, succ.index)
					inWork[succ.index] = true
				}
			}
		}
	}
	_ = edgeFact{}
}

// findAcquisitions scans the body (excluding nested function literals)
// for statements that bind an acquire-call result to a local variable.
func findAcquisitions(pass *Pass, cfg *ownConfig, body *ast.BlockStmt) []*acquisition {
	var acqs []*acquisition
	walkShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		what, mayBeNil, ok := cfg.isAcquire(pass, call)
		if !ok {
			return
		}
		if len(as.Lhs) == 0 {
			return
		}
		v := lhsVar(pass, as.Lhs[0])
		if v == nil {
			return
		}
		acq := &acquisition{obj: v, pos: call.Pos(), what: what, mayBeNil: mayBeNil}
		if len(as.Lhs) == 2 {
			if e := lhsVar(pass, as.Lhs[1]); e != nil && isErrorVar(e) {
				acq.errObj = e
			}
		}
		acqs = append(acqs, acq)
	})
	return acqs
}

// walkShallow visits nodes without descending into function literals.
func walkShallow(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func lhsVar(pass *Pass, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if def, ok := pass.TypesInfo.Defs[id]; ok {
		v, _ := def.(*types.Var)
		return v
	}
	if use, ok := pass.TypesInfo.Uses[id]; ok {
		v, _ := use.(*types.Var)
		// Only track function-local variables: assignments to package
		// vars or fields escape the intraprocedural analysis.
		if v != nil && v.Parent() != nil && v.Parent() != v.Pkg().Scope() {
			return v
		}
	}
	return nil
}

func isErrorVar(v *types.Var) bool {
	named, ok := v.Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// acqIndex finds the tracked acquisition for an identifier use.
func acqIndex(pass *Pass, acqs []*acquisition, e ast.Expr) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, _ := obj.(*types.Var)
	if v == nil {
		return -1
	}
	for i, a := range acqs {
		if a.obj == v {
			return i
		}
	}
	return -1
}

// refineCond sharpens states on a branch edge for `v == nil`,
// `v != nil`, `err == nil` and `err != nil` conditions.
func refineCond(pass *Pass, acqs []*acquisition, st []ownState, cond ast.Expr, trueEdge bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return
	}
	var varSide ast.Expr
	if isNilIdent(be.Y) {
		varSide = be.X
	} else if isNilIdent(be.X) {
		varSide = be.Y
	} else {
		return
	}
	// isNil: does this edge imply varSide == nil?
	isNil := (be.Op == token.EQL) == trueEdge

	if i := acqIndex(pass, acqs, varSide); i >= 0 && acqs[i].mayBeNil {
		if st[i] == ownOwned || st[i] == ownMaybe {
			if isNil {
				st[i] = ownNone
			} else {
				st[i] = ownOwned
			}
		}
		return
	}
	// err-paired refinement: on the err != nil edge the resource was
	// never acquired.
	id, ok := ast.Unparen(varSide).(*ast.Ident)
	if !ok {
		return
	}
	eObj, _ := pass.TypesInfo.Uses[id].(*types.Var)
	if eObj == nil {
		return
	}
	for i, a := range acqs {
		if a.errObj == eObj && (st[i] == ownOwned || st[i] == ownMaybe) {
			if !isNil { // err != nil on this edge
				st[i] = ownNone
			} else {
				st[i] = ownOwned
			}
		}
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// transferStmt applies one statement's effect to the state vector.
func transferStmt(pass *Pass, cfg *ownConfig, acqs []*acquisition, st []ownState, s ast.Stmt, reporting bool) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		if recv, ok := cfg.releaseOn(pass, s.Call); ok {
			if i := acqIndex(pass, acqs, recv); i >= 0 {
				acqs[i].deferRelease = true
				return
			}
		}
		transferExpr(pass, cfg, acqs, st, s.Call, reporting)
		return

	case *ast.AssignStmt:
		// RHS first (evaluation order), then LHS effects.
		for _, r := range s.Rhs {
			transferExpr(pass, cfg, acqs, st, r, reporting)
		}
		for li, l := range s.Lhs {
			// Reassigning a tracked variable: the old value's fate must
			// already be settled; a definite overwrite of an owned value
			// is a leak. A re-acquisition resets to Owned.
			if i := acqIndex(pass, acqs, l); i >= 0 {
				newState := ownNone
				if len(s.Rhs) == len(s.Lhs) {
					if call, ok := ast.Unparen(s.Rhs[li]).(*ast.CallExpr); ok {
						if _, _, ok := cfg.isAcquire(pass, call); ok {
							newState = ownOwned
						}
					}
					if isNilIdent(s.Rhs[li]) {
						newState = ownNone
					}
				}
				if reporting && st[i] == ownOwned && !acqs[i].deferRelease && !acqs[i].reportedLeak {
					acqs[i].reportedLeak = true
					pass.Reportf(s.Pos(), "%s is overwritten while still owned; release or transfer it first (acquired at %s)",
						acqs[i].obj.Name(), pass.Fset.Position(acqs[i].pos))
				}
				st[i] = newState
			} else {
				// Storing a tracked value *into* something (field, map,
				// index) is handled by transferExpr on the LHS base.
				transferExpr(pass, cfg, acqs, st, l, reporting)
			}
		}
		return

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if i := acqIndex(pass, acqs, r); i >= 0 {
				st[i] = ownEscaped
				continue
			}
			transferExpr(pass, cfg, acqs, st, r, reporting)
		}
		return

	case *ast.ExprStmt:
		transferExpr(pass, cfg, acqs, st, s.X, reporting)
		return

	case *ast.SendStmt:
		if i := acqIndex(pass, acqs, s.Value); i >= 0 {
			st[i] = ownEscaped
		} else {
			transferExpr(pass, cfg, acqs, st, s.Value, reporting)
		}
		transferExpr(pass, cfg, acqs, st, s.Chan, reporting)
		return

	case *ast.GoStmt:
		transferExpr(pass, cfg, acqs, st, s.Call, reporting)
		return

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						transferExpr(pass, cfg, acqs, st, v, reporting)
					}
				}
			}
		}
		return

	case *ast.IncDecStmt:
		transferExpr(pass, cfg, acqs, st, s.X, reporting)
		return

	case *ast.RangeStmt:
		transferExpr(pass, cfg, acqs, st, s.X, reporting)
		return
	}
	// Other statements: inspect for any embedded expressions
	// conservatively.
	ast.Inspect(s, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			transferExpr(pass, cfg, acqs, st, e, reporting)
			return false
		}
		return true
	})
}

// transferExpr walks an expression, applying releases, escapes and
// use-after-release checks.
func transferExpr(pass *Pass, cfg *ownConfig, acqs []*acquisition, st []ownState, e ast.Expr, reporting bool) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		// Release call on a tracked value?
		if recv, ok := cfg.releaseOn(pass, e); ok {
			if i := acqIndex(pass, acqs, recv); i >= 0 {
				if reporting {
					if st[i] == ownReleased {
						pass.Reportf(e.Pos(), "%s released twice (%s acquired at %s)",
							acqs[i].obj.Name(), acqs[i].what, pass.Fset.Position(acqs[i].pos))
					} else if acqs[i].deferRelease {
						pass.Reportf(e.Pos(), "%s released explicitly and again by defer (%s acquired at %s)",
							acqs[i].obj.Name(), acqs[i].what, pass.Fset.Position(acqs[i].pos))
					}
				}
				if st[i] != ownEscaped {
					st[i] = ownReleased
				}
				return
			}
		}
		// Arguments: passing a tracked value transfers ownership.
		transferExpr(pass, cfg, acqs, st, e.Fun, reporting)
		for _, a := range e.Args {
			if i := acqIndex(pass, acqs, a); i >= 0 {
				useCheck(pass, acqs, st, i, a, reporting)
				st[i] = ownEscaped
				continue
			}
			transferExpr(pass, cfg, acqs, st, a, reporting)
		}

	case *ast.Ident:
		if i := acqIndex(pass, acqs, e); i >= 0 {
			useCheck(pass, acqs, st, i, e, reporting)
		}

	case *ast.SelectorExpr:
		// v.Method() receivers and v.Field reads are uses, not escapes.
		if i := acqIndex(pass, acqs, e.X); i >= 0 {
			useCheck(pass, acqs, st, i, e.X, reporting)
			return
		}
		transferExpr(pass, cfg, acqs, st, e.X, reporting)

	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if i := acqIndex(pass, acqs, e.X); i >= 0 {
				st[i] = ownEscaped // address taken: out of our hands
				return
			}
		}
		transferExpr(pass, cfg, acqs, st, e.X, reporting)

	case *ast.CompositeLit:
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if i := acqIndex(pass, acqs, v); i >= 0 {
				useCheck(pass, acqs, st, i, v, reporting)
				st[i] = ownEscaped
				continue
			}
			transferExpr(pass, cfg, acqs, st, v, reporting)
		}

	case *ast.FuncLit:
		// Capturing a tracked value inside a closure escapes it.
		walkShallowLit(e, func(id *ast.Ident) {
			if i := acqIdent(pass, acqs, id); i >= 0 {
				st[i] = ownEscaped
			}
		})

	case *ast.BinaryExpr:
		transferExpr(pass, cfg, acqs, st, e.X, reporting)
		transferExpr(pass, cfg, acqs, st, e.Y, reporting)

	case *ast.IndexExpr:
		transferExpr(pass, cfg, acqs, st, e.X, reporting)
		transferExpr(pass, cfg, acqs, st, e.Index, reporting)

	case *ast.SliceExpr:
		transferExpr(pass, cfg, acqs, st, e.X, reporting)

	case *ast.StarExpr:
		transferExpr(pass, cfg, acqs, st, e.X, reporting)

	case *ast.TypeAssertExpr:
		transferExpr(pass, cfg, acqs, st, e.X, reporting)

	case *ast.KeyValueExpr:
		transferExpr(pass, cfg, acqs, st, e.Value, reporting)
	}
}

// walkShallowLit visits every identifier inside a function literal
// (including nested literals — captures compose).
func walkShallowLit(lit *ast.FuncLit, fn func(*ast.Ident)) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			fn(id)
		}
		return true
	})
}

func acqIdent(pass *Pass, acqs []*acquisition, id *ast.Ident) int {
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		return -1
	}
	for i, a := range acqs {
		if a.obj == v {
			return i
		}
	}
	return -1
}

// useCheck flags uses of a definitely-released value.
func useCheck(pass *Pass, acqs []*acquisition, st []ownState, i int, at ast.Expr, reporting bool) {
	if reporting && st[i] == ownReleased {
		pass.Reportf(at.Pos(), "use of %s after release (%s acquired at %s)",
			acqs[i].obj.Name(), acqs[i].what, pass.Fset.Position(acqs[i].pos))
	}
}

// reportExit flags values still owned when a path leaves the function.
func reportExit(pass *Pass, acqs []*acquisition, st []ownState, blk *cfgBlock) {
	for i, a := range acqs {
		if a.deferRelease || a.reportedLeak {
			continue
		}
		if st[i] == ownOwned || st[i] == ownMaybe {
			a.reportedLeak = true
			qualifier := ""
			if st[i] == ownMaybe {
				qualifier = " on some paths"
			}
			pos := a.pos
			where := ""
			if blk.returnStmt != nil {
				where = " (escapes settlement at return on line " +
					itoa(pass.Fset.Position(blk.returnStmt.Pos()).Line) + ")"
			}
			pass.Reportf(pos, "%s is never released or transferred%s%s", a.what, qualifier, where)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
