package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc structurally guards the zero-allocation paths that the
// AllocsPerRun round-trip tests measure end to end. A function marked
//
//	//starlink:hotpath
//
// must keep its success path free of the four allocation sources that
// have historically crept into Starlink's steady-state bridge loop:
//
//   - fmt calls (Sprintf and friends allocate unconditionally);
//   - non-constant string concatenation;
//   - closures that capture variables (captured vars are heap-moved and
//     the closure itself allocates per call);
//   - append to a slice that starts with no capacity in this function
//     (growth from zero reallocates on the steady path; appending to a
//     caller-provided or make()-sized slice is the sanctioned idiom).
//
// Error construction is exempt: an expression inside a return whose
// final result is a non-nil error sits on the failure path, which is
// allowed to allocate. The annotation is not transitive — callees need
// their own annotation — so marking a thin wrapper checks only the
// wrapper.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions marked //starlink:hotpath avoid fmt, string concatenation, capturing closures and zero-capacity appends",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	pass.eachFuncDecl(func(f *ast.File, decl *ast.FuncDecl) {
		if !hasDirective(decl, "hotpath") {
			return
		}
		checkHotBody(pass, decl)
	})
	return nil
}

func checkHotBody(pass *Pass, decl *ast.FuncDecl) {
	body := decl.Body
	coldReturns := coldReturnSpans(pass, decl)
	isCold := func(pos token.Pos) bool {
		for _, sp := range coldReturns {
			if pos >= sp[0] && pos <= sp[1] {
				return true
			}
		}
		return false
	}
	zeroCap := zeroCapSlices(pass, body)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isCold(n.Pos()) {
				return true
			}
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s on a //starlink:hotpath success path allocates; format off the hot path or append manually", fn.Name())
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					if v := usedVar(pass, n.Args[0]); v != nil && zeroCap[v] {
						pass.Reportf(n.Pos(), "append to %s, which starts with no capacity in a //starlink:hotpath function; preallocate with make or take the buffer from the caller", v.Name())
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD || isCold(n.Pos()) {
				return true
			}
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || tv.Value != nil { // constant-folded concat is free
				return true
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				pass.Reportf(n.Pos(), "string concatenation on a //starlink:hotpath success path allocates; use append on a byte buffer")
			}
		case *ast.FuncLit:
			if isCold(n.Pos()) {
				return false
			}
			if capt := capturedVar(pass, n); capt != nil {
				pass.Reportf(n.Pos(), "closure capturing %s in a //starlink:hotpath function allocates per call; hoist the closure or pass state explicitly", capt.Name())
			}
			return false // don't descend: the literal runs later, not on this path
		}
		return true
	})
}

// coldReturnSpans finds the source spans of return statements whose
// last result is a non-nil error — the sanctioned allocation sites.
func coldReturnSpans(pass *Pass, decl *ast.FuncDecl) [][2]token.Pos {
	results := decl.Type.Results
	if results == nil || len(results.List) == 0 {
		return nil
	}
	last := results.List[len(results.List)-1].Type
	tv, ok := pass.TypesInfo.Types[last]
	if !ok || !isErrorType(tv.Type) {
		return nil
	}
	var spans [][2]token.Pos
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		if isNilIdent(ret.Results[len(ret.Results)-1]) {
			return true // success return: stays hot
		}
		spans = append(spans, [2]token.Pos{ret.Pos(), ret.End()})
		return true
	})
	return spans
}

// zeroCapSlices collects local slice variables declared with no backing
// capacity: `var x []T`, `x := []T{}`, or `x := T(nil)`. A slice built
// with make (any capacity) or received as a parameter is assumed sized.
func zeroCapSlices(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(ident *ast.Ident) {
		if v, ok := pass.TypesInfo.Defs[ident].(*types.Var); ok && v != nil {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				out[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, l := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				if cl, ok := ast.Unparen(n.Rhs[i]).(*ast.CompositeLit); ok {
					if len(cl.Elts) == 0 {
						if _, isSlice := pass.TypesInfo.Types[cl].Type.Underlying().(*types.Slice); isSlice {
							mark(id)
						}
					}
				}
				if isNilIdent(n.Rhs[i]) {
					mark(id)
				}
			}
		}
		return true
	})
	return out
}

// usedVar resolves an expression to the variable it names, or nil.
func usedVar(pass *Pass, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// capturedVar returns a variable the literal references but does not
// declare — a closure capture — or nil when the literal is capture-free.
func capturedVar(pass *Pass, lit *ast.FuncLit) *types.Var {
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level: not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			if !v.IsField() {
				found = v
			}
		}
		return true
	})
	return found
}
