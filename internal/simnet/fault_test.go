package simnet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"starlink/internal/netapi"
)

// faultWorkload drives a small mixed workload over a fresh simulator:
// two senders flooding one multicast group and one unicast receiver,
// plus a stream exchange — enough traffic that loss, delay, reorder,
// duplication and partition rules all get something to chew on.
// It returns the net (quiesced) for trace inspection.
func faultWorkload(t *testing.T, seed int64, plan *netapi.FaultPlan, opts ...Option) *Net {
	t.Helper()
	n := New(append([]Option{WithSeed(seed), WithEventTrace(), WithFaults(plan)}, opts...)...)

	recvNode, _ := n.NewNode("10.0.0.9")
	got := 0
	if _, err := recvNode.JoinGroup(netapi.Addr{IP: "239.1.1.1", Port: 4000}, func(p netapi.Packet) {
		got++
	}); err != nil {
		t.Fatal(err)
	}
	uni, err := recvNode.OpenUDP(5000, func(p netapi.Packet) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	var chunks []string
	if _, err := recvNode.ListenStream(6000, nil, func(c netapi.Conn, data []byte) {
		if data != nil {
			chunks = append(chunks, string(data))
			_ = c.Send([]byte("ack:" + string(data)))
		}
	}); err != nil {
		t.Fatal(err)
	}

	for i, ip := range []string{"10.0.0.1", "10.0.0.2"} {
		nd, _ := n.NewNode(ip)
		s, err := nd.OpenUDP(0, func(netapi.Packet) {})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 10; j++ {
			at := time.Duration(j) * time.Millisecond
			payload := []byte(fmt.Sprintf("m-%d-%d", i, j))
			nd.After(at, func() {
				_ = s.Send(netapi.Addr{IP: "239.1.1.1", Port: 4000}, payload)
				_ = s.Send(uni.LocalAddr(), payload)
			})
		}
		conn, err := nd.DialStream(netapi.Addr{IP: "10.0.0.9", Port: 6000}, func(netapi.Conn, []byte) {})
		if err == nil {
			for j := 0; j < 3; j++ {
				payload := []byte(fmt.Sprintf("s-%d-%d", i, j))
				nd.After(time.Duration(j)*2*time.Millisecond, func() { _ = conn.Send(payload) })
			}
		}
	}
	n.Run(time.Second)
	n.RunToQuiescence()
	return n
}

// plans exercised by the determinism tests, one per fault type.
func faultPlans() map[string]*netapi.FaultPlan {
	return map[string]*netapi.FaultPlan{
		"loss":      {Rules: []netapi.FaultRule{{Proto: "udp", Loss: 0.3}}},
		"delay":     {Rules: []netapi.FaultRule{{Delay: 2 * time.Millisecond, DelayJitter: time.Millisecond}}},
		"reorder":   {Rules: []netapi.FaultRule{{Proto: "udp", Reorder: 0.4}}},
		"duplicate": {Rules: []netapi.FaultRule{{Proto: "udp", Duplicate: 0.4, DuplicateDelay: 500 * time.Microsecond}}},
		"partition": {Rules: []netapi.FaultRule{{From: "10.0.0.1", To: "10.0.0.9", Start: 2 * time.Millisecond, End: 6 * time.Millisecond, Partition: true}}},
	}
}

// TestFaultDeterminism pins the determinism contract per fault type:
// same seed + same plan ⇒ byte-identical event trace; a different
// seed ⇒ a different trace (the faults are actually random).
func TestFaultDeterminism(t *testing.T) {
	for name, plan := range faultPlans() {
		t.Run(name, func(t *testing.T) {
			a := faultWorkload(t, 42, plan)
			b := faultWorkload(t, 42, plan)
			la, lb := a.TraceLines(), b.TraceLines()
			if strings.Join(la, "\n") != strings.Join(lb, "\n") {
				t.Fatalf("same seed, different traces (%d vs %d lines)", len(la), len(lb))
			}
			if a.TraceHash() != b.TraceHash() {
				t.Fatalf("same lines but different hashes: %x vs %x", a.TraceHash(), b.TraceHash())
			}
			if a.TraceHash() == 0 {
				t.Fatal("trace hash is zero — nothing was recorded")
			}
			c := faultWorkload(t, 43, plan)
			if c.TraceHash() == a.TraceHash() {
				t.Fatalf("%s: seeds 42 and 43 produced identical traces", name)
			}
		})
	}
}

// TestFaultPlanOffIdentical pins "plan off ⇒ no behavior change": a
// nil plan, an empty plan, and a plan whose rules never match all
// produce byte-identical traces — installing the fault plane must not
// perturb the jitter RNG or the event schedule.
func TestFaultPlanOffIdentical(t *testing.T) {
	base := faultWorkload(t, 7, nil)
	for name, plan := range map[string]*netapi.FaultPlan{
		"empty":   {},
		"nomatch": {Rules: []netapi.FaultRule{{From: "172.16.0.1", Loss: 1, Delay: time.Second, Duplicate: 1, Partition: false}}},
	} {
		got := faultWorkload(t, 7, plan)
		if strings.Join(got.TraceLines(), "\n") != strings.Join(base.TraceLines(), "\n") {
			t.Fatalf("%s plan changed the trace", name)
		}
	}
}

// TestFaultIsolation pins that a plan scoped to one endpoint pair
// leaves every other pair's deliveries byte-identical: fault decisions
// draw from a dedicated RNG, so unrelated traffic keeps its exact
// no-plan timing.
func TestFaultIsolation(t *testing.T) {
	base := faultWorkload(t, 11, nil)
	scoped := &netapi.FaultPlan{Rules: []netapi.FaultRule{
		{From: "10.0.0.1", To: "10.0.0.9", Proto: "udp", Loss: 0.5, Delay: time.Millisecond, Duplicate: 0.5},
	}}
	got := faultWorkload(t, 11, scoped)
	filter := func(lines []string) []string {
		var out []string
		for _, l := range lines {
			if strings.Contains(l, "10.0.0.1:") {
				continue // the faulted sender's traffic
			}
			out = append(out, l)
		}
		return out
	}
	a, b := filter(base.TraceLines()), filter(got.TraceLines())
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("faults on 10.0.0.1->10.0.0.9 perturbed other pairs:\nbase %d lines, got %d lines", len(a), len(b))
	}
}

// TestFaultEffects sanity-checks that each fault type actually does
// something: loss drops, duplication re-delivers, partitions cut the
// pair during their window and heal after.
func TestFaultEffects(t *testing.T) {
	run := func(plan *netapi.FaultPlan) (*Net, map[string]int) {
		n := New(WithSeed(3), WithEventTrace(), WithFaults(plan), WithLatency(200*time.Microsecond, 0))
		recvNode, _ := n.NewNode("10.0.0.9")
		counts := map[string]int{}
		sock, err := recvNode.OpenUDP(5000, func(p netapi.Packet) { counts["recv"]++ })
		if err != nil {
			t.Fatal(err)
		}
		send, _ := n.NewNode("10.0.0.1")
		s, err := send.OpenUDP(0, func(netapi.Packet) {})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			at := time.Duration(j) * 100 * time.Microsecond
			send.After(at, func() { _ = s.Send(sock.LocalAddr(), []byte("x")) })
		}
		n.RunToQuiescence()
		for _, l := range n.TraceLines() {
			f := strings.Fields(l)
			counts[strings.Join(f[4:], " ")]++
		}
		return n, counts
	}

	_, c := run(&netapi.FaultPlan{Rules: []netapi.FaultRule{{Loss: 0.5}}})
	if c["drop loss"] == 0 || c["recv"] == 0 || c["recv"]+c["drop loss"] != 100 {
		t.Fatalf("loss plan: %v", c)
	}
	_, c = run(&netapi.FaultPlan{Rules: []netapi.FaultRule{{Duplicate: 0.5}}})
	if c["dup"] == 0 || c["recv"] != 100+c["dup"] {
		t.Fatalf("duplicate plan: %v", c)
	}
	_, c = run(&netapi.FaultPlan{Rules: []netapi.FaultRule{
		{Start: 2 * time.Millisecond, End: 6 * time.Millisecond, Partition: true},
	}})
	// 100 sends at 100µs spacing: sends in [2ms,6ms) are cut — 40 of
	// them — and the rest deliver (zero jitter keeps this exact).
	if c["drop partition"] != 40 || c["recv"] != 60 {
		t.Fatalf("partition plan: %v", c)
	}
}

// TestFaultReorderOvertakes pins that a reorder hold actually lets a
// later datagram overtake an earlier one on the same pair.
func TestFaultReorderOvertakes(t *testing.T) {
	n := New(WithSeed(1), WithLatency(200*time.Microsecond, 0),
		WithFaults(&netapi.FaultPlan{Rules: []netapi.FaultRule{
			// End the window right after the first send so exactly the
			// first datagram is held.
			{End: 50 * time.Microsecond, Reorder: 1, ReorderDelay: time.Millisecond},
		}}))
	recvNode, _ := n.NewNode("10.0.0.9")
	var order []string
	sock, err := recvNode.OpenUDP(5000, func(p netapi.Packet) { order = append(order, string(p.Data)) })
	if err != nil {
		t.Fatal(err)
	}
	send, _ := n.NewNode("10.0.0.1")
	s, err := send.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Send(sock.LocalAddr(), []byte("first"))
	send.After(100*time.Microsecond, func() { _ = s.Send(sock.LocalAddr(), []byte("second")) })
	n.RunToQuiescence()
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("want second overtaking first, got %v", order)
	}
}

// TestLeasedDeliveryBalances pins the leased-delivery mode: handlers
// that never take the lease leak nothing (the runtime releases), and a
// handler that does take it owns a private copy it must release.
func TestLeasedDeliveryBalances(t *testing.T) {
	before := netapi.LeasedBuffers()
	n := New(WithSeed(5), WithLeasedDelivery(),
		WithFaults(&netapi.FaultPlan{Rules: []netapi.FaultRule{{Duplicate: 1}}}))
	recvNode, _ := n.NewNode("10.0.0.9")
	var taken []*netapi.Buffer
	var seen []string
	sock, err := recvNode.OpenUDP(5000, func(p netapi.Packet) {
		seen = append(seen, string(p.Data))
		if len(taken) == 0 { // take exactly one lease, hold it past the callback
			if b := p.TakeLease(); b != nil {
				taken = append(taken, b)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	send, _ := n.NewNode("10.0.0.1")
	s, err := send.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Send(sock.LocalAddr(), []byte("payload"))
	n.RunToQuiescence()
	if len(seen) != 2 {
		t.Fatalf("want original + duplicate, got %v", seen)
	}
	if len(taken) != 1 {
		t.Fatalf("handler took %d leases", len(taken))
	}
	if got := netapi.LeasedBuffers() - before; got != 1 {
		t.Fatalf("outstanding leases after run: %d (want 1: the taken one)", got)
	}
	taken[0].Release()
	if got := netapi.LeasedBuffers() - before; got != 0 {
		t.Fatalf("outstanding leases after release: %d", got)
	}
}

// TestFaultStreamPartitionHeals pins stream semantics under a healing
// partition: chunks sent during the window arrive, in order, only
// after the heal.
func TestFaultStreamPartitionHeals(t *testing.T) {
	n := New(WithSeed(9), WithLatency(200*time.Microsecond, 0),
		WithFaults(&netapi.FaultPlan{Rules: []netapi.FaultRule{
			{Proto: "stream", Start: 0, End: 5 * time.Millisecond, Partition: true},
		}}))
	srvNode, _ := n.NewNode("10.0.0.9")
	type arrival struct {
		data string
		at   time.Duration
	}
	epoch := n.Now()
	var got []arrival
	if _, err := srvNode.ListenStream(6000, nil, func(c netapi.Conn, data []byte) {
		if data != nil {
			got = append(got, arrival{string(data), n.Now().Sub(epoch)})
		}
	}); err != nil {
		t.Fatal(err)
	}
	cli, _ := n.NewNode("10.0.0.1")
	conn, err := cli.DialStream(netapi.Addr{IP: "10.0.0.9", Port: 6000}, func(netapi.Conn, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	_ = conn.Send([]byte("a"))
	cli.After(time.Millisecond, func() { _ = conn.Send([]byte("b")) })
	n.RunToQuiescence()
	if len(got) != 2 || got[0].data != "a" || got[1].data != "b" {
		t.Fatalf("want ordered a,b after heal, got %v", got)
	}
	for _, a := range got {
		if a.at < 5*time.Millisecond {
			t.Fatalf("chunk %q arrived at %v, before the 5ms heal", a.data, a.at)
		}
	}
}

// TestFaultStreamRefusedWhenUnhealing pins that dialing across a
// partition with no End fails fast instead of hanging.
func TestFaultStreamRefusedWhenUnhealing(t *testing.T) {
	n := New(WithSeed(2), WithFaults(&netapi.FaultPlan{Rules: []netapi.FaultRule{
		{From: "10.0.0.1", To: "10.0.0.9", Partition: true},
	}}))
	srvNode, _ := n.NewNode("10.0.0.9")
	if _, err := srvNode.ListenStream(6000, nil, func(netapi.Conn, []byte) {}); err != nil {
		t.Fatal(err)
	}
	cli, _ := n.NewNode("10.0.0.1")
	if _, err := cli.DialStream(netapi.Addr{IP: "10.0.0.9", Port: 6000}, func(netapi.Conn, []byte) {}); err == nil {
		t.Fatal("dial across an unhealing partition succeeded")
	}
}

// TestInstallFaultsMidRun pins that installing a plan mid-run anchors
// its windows at the install instant and that removal restores clean
// delivery.
func TestInstallFaultsMidRun(t *testing.T) {
	n := New(WithSeed(4), WithLatency(200*time.Microsecond, 0))
	recvNode, _ := n.NewNode("10.0.0.9")
	got := 0
	sock, err := recvNode.OpenUDP(5000, func(netapi.Packet) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	send, _ := n.NewNode("10.0.0.1")
	s, err := send.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Send(sock.LocalAddr(), []byte("x"))
	n.RunToQuiescence()
	if got != 1 {
		t.Fatalf("clean delivery: got %d", got)
	}
	n.InstallFaults(&netapi.FaultPlan{Rules: []netapi.FaultRule{{Partition: true}}})
	_ = s.Send(sock.LocalAddr(), []byte("x"))
	n.RunToQuiescence()
	if got != 1 {
		t.Fatalf("partition installed mid-run did not cut delivery: got %d", got)
	}
	n.InstallFaults(nil)
	_ = s.Send(sock.LocalAddr(), []byte("x"))
	n.RunToQuiescence()
	if got != 2 {
		t.Fatalf("removing the plan did not restore delivery: got %d", got)
	}
}
