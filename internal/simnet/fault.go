// Fault plane and delivery-event trace: the DST rig's view of the
// simulator. A netapi.FaultPlan installed into a Net injects loss,
// extra delay, reordering, duplication and directional partitions at
// the delivery layer; an enabled event trace records every delivery
// decision as one text line plus a rolling hash, so two runs can be
// compared byte for byte.
//
// Determinism: fault decisions draw from a dedicated RNG seeded from
// the net's seed, never from the shared latency-jitter RNG. Installing
// a plan therefore does not perturb the jitter sequence — a run with
// faults disabled (or a plan whose rules never match) is byte-identical
// to a run on a simulator that has no fault plane at all, and traffic
// pairs a plan does not match keep their exact no-plan timings.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"starlink/internal/netapi"
)

// WithFaults installs a fault plan at construction time (the plan's
// window offsets are relative to the virtual epoch). Equivalent to
// calling InstallFaults immediately after New.
func WithFaults(plan *netapi.FaultPlan) Option {
	return func(n *Net) { n.installFaultsLocked(plan) }
}

// WithEventTrace enables the delivery-event trace: every delivery-layer
// decision (deliver, drop, dup, defer, stall, stream connect/close)
// appends one line and folds into a rolling hash. Costs memory
// proportional to traffic; off by default.
func WithEventTrace() Option {
	return func(n *Net) { n.trace = &eventTrace{epoch: n.now} }
}

// WithLeasedDelivery makes UDP deliveries carry pooled leased buffers
// (netapi.Buffer + lease flag) exactly like the real runtime's read
// loops, instead of heap-owned slices. This puts the engine's
// lease-ownership paths — including duplicate deliveries each owning a
// distinct buffer — under the simulator's deterministic schedule, so
// the DST lease-balance invariant can catch leaks.
func WithLeasedDelivery() Option {
	return func(n *Net) { n.leased = true }
}

var _ netapi.FaultInjector = (*Net)(nil)

// InstallFaults installs (or, with nil, removes) the fault plan. The
// plan's Start/End windows are measured from the install instant. The
// fault RNG is re-seeded from the net's seed on every install, so
// install-then-run is as deterministic as construction-time options.
func (n *Net) InstallFaults(plan *netapi.FaultPlan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.installFaultsLocked(plan)
}

func (n *Net) installFaultsLocked(plan *netapi.FaultPlan) {
	if plan.Empty() {
		n.faults = nil
		return
	}
	// Seed the fault RNG from the net seed via splitmix64 so the two
	// streams (jitter vs faults) are decorrelated even for small seeds.
	n.faults = &faultState{
		plan:  plan,
		epoch: n.now,
		rng:   rand.New(rand.NewSource(int64(n.tieFor(0x5DF1E9)))),
	}
}

// faultState is an installed plan plus its epoch and dedicated RNG.
// Guarded by Net.mu like the rest of the simulator state.
type faultState struct {
	plan  *netapi.FaultPlan
	epoch time.Time
	rng   *rand.Rand
}

// faultVerdict is the per-delivery outcome of consulting the plan.
type faultVerdict struct {
	drop     bool
	dropKind string // "loss" or "partition"
	// extra is added to the base one-way latency draw.
	extra time.Duration
	// dup schedules a second copy dupDelay after the first.
	dup      bool
	dupDelay time.Duration
	// healHold stalls a stream delivery until a partition's End.
	healHold time.Duration
	// refuse fails a stream dial outright (unhealing partition).
	refuse bool
}

// udp evaluates the plan for one datagram from→to at virtual instant
// now. Caller holds Net.mu. Every matching rule applies in plan order;
// a drop stops evaluation (nothing is left to deliver).
func (f *faultState) udp(now time.Time, from, to netapi.Addr, defaultReorder time.Duration) faultVerdict {
	var v faultVerdict
	elapsed := now.Sub(f.epoch)
	for i := range f.plan.Rules {
		r := &f.plan.Rules[i]
		if !r.Matches("udp", from, to, elapsed) {
			continue
		}
		if r.Partition {
			return faultVerdict{drop: true, dropKind: "partition"}
		}
		if r.Loss > 0 && f.rng.Float64() < r.Loss {
			return faultVerdict{drop: true, dropKind: "loss"}
		}
		if r.Delay > 0 || r.DelayJitter > 0 {
			v.extra += r.Delay
			if r.DelayJitter > 0 {
				v.extra += time.Duration(f.rng.Int63n(int64(r.DelayJitter)))
			}
		}
		if r.Duplicate > 0 && f.rng.Float64() < r.Duplicate {
			v.dup = true
			v.dupDelay += r.DuplicateDelay
		}
		if r.Reorder > 0 && f.rng.Float64() < r.Reorder {
			hold := r.ReorderDelay
			if hold == 0 {
				hold = defaultReorder
			}
			v.extra += hold
		}
	}
	return v
}

// stream evaluates the plan for one stream delivery (chunk, dial or
// close propagation) from→to at now. Caller holds Net.mu. Streams keep
// TCP semantics: loss, duplication and reordering never apply; a
// partition stalls traffic until its End (heals), or kills it when the
// rule has no End.
func (f *faultState) stream(now time.Time, from, to netapi.Addr) faultVerdict {
	var v faultVerdict
	elapsed := now.Sub(f.epoch)
	for i := range f.plan.Rules {
		r := &f.plan.Rules[i]
		if !r.Matches("stream", from, to, elapsed) {
			continue
		}
		if r.Partition {
			if r.End == 0 {
				return faultVerdict{drop: true, dropKind: "partition", refuse: true}
			}
			if hold := r.End - elapsed; hold > v.healHold {
				v.healHold = hold
			}
		}
		if r.Delay > 0 || r.DelayJitter > 0 {
			v.extra += r.Delay
			if r.DelayJitter > 0 {
				v.extra += time.Duration(f.rng.Int63n(int64(r.DelayJitter)))
			}
		}
	}
	return v
}

// ---------------------------------------------------------------------
// Delivery-event trace
// ---------------------------------------------------------------------

// eventTrace accumulates one line per delivery-layer decision plus a
// rolling FNV-1a hash of the whole trace. Guarded by Net.mu.
type eventTrace struct {
	epoch time.Time
	hash  uint64
	lines []string
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// record appends one trace line. Caller holds Net.mu; event execution
// is serialized by the event loop plus the WorkTracker contract, so
// line order is deterministic for a given seed.
func (t *eventTrace) record(now time.Time, proto, kind string, from, to netapi.Addr, size int) {
	line := fmt.Sprintf("+%s %s %s>%s %d %s", now.Sub(t.epoch), proto, from, to, size, kind)
	h := t.hash
	if h == 0 {
		h = fnvOffset
	}
	for i := 0; i < len(line); i++ {
		h ^= uint64(line[i])
		h *= fnvPrime
	}
	h ^= '\n'
	h *= fnvPrime
	t.hash = h
	t.lines = append(t.lines, line)
}

// traceLocked records a delivery-layer event when tracing is enabled.
// Caller holds Net.mu.
func (n *Net) traceLocked(proto, kind string, from, to netapi.Addr, size int) {
	if n.trace != nil {
		n.trace.record(n.now, proto, kind, from, to, size)
	}
}

// TraceHash returns the rolling FNV-1a hash of the event trace so far
// (zero when tracing is disabled or no event has been recorded). Read
// it only while the simulation is not being driven.
func (n *Net) TraceHash() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.trace == nil {
		return 0
	}
	return n.trace.hash
}

// TraceLines returns a copy of the recorded event-trace lines. Read it
// only while the simulation is not being driven.
func (n *Net) TraceLines() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.trace == nil {
		return nil
	}
	return append([]string(nil), n.trace.lines...)
}

// defaultReorderLocked is the hold applied by a reorder fault whose
// rule does not set ReorderDelay: long enough that traffic sent just
// after the held packet can overtake it even with maximal jitter.
// Caller holds Net.mu.
func (n *Net) defaultReorderLocked() time.Duration {
	return 2 * (n.latBase + n.latJitter)
}
