package simnet_test

import (
	"fmt"
	"testing"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/simnet"
)

// gateTrace runs one deterministic pause/resume scenario: a gated UDP
// receiver whose handler pauses the gate after the third packet and
// schedules a timer-driven resume; the sender blasts eight payloads
// up front. The trace records every delivery (payload and virtual
// timestamp) plus the pause/resume markers, so it captures exactly
// which packets rode out the pause parked in the simulator.
func gateTrace(t *testing.T, seed int64) []string {
	t.Helper()
	sim := simnet.New(simnet.WithSeed(seed), simnet.WithLatency(time.Millisecond, 0))
	recvNode, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatal(err)
	}
	gate := netapi.NewFlowGate()
	gated := netapi.Gated(recvNode, gate)
	if gated == recvNode {
		t.Fatal("simnet must support netapi.FlowLimiter")
	}

	var trace []string
	start := sim.Now()
	stamp := func(ev string) {
		trace = append(trace, fmt.Sprintf("%s@%s", ev, sim.Now().Sub(start)))
	}
	seen := 0
	sock, err := gated.OpenUDP(0, func(p netapi.Packet) {
		seen++
		stamp(string(p.Data))
		if seen == 3 {
			stamp("pause")
			gate.Pause()
			recvNode.After(10*time.Millisecond, func() {
				stamp("resume")
				gate.Resume()
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()

	sendNode, _ := sim.NewNode("10.0.0.1")
	cli, err := sendNode.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := cli.Send(sock.LocalAddr(), []byte{'p', '0' + byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunToQuiescence()
	if sim.PacketsDeferred == 0 {
		t.Fatal("no deliveries were parked behind the blocked gate")
	}
	return trace
}

// The gate pause defers deliveries instead of dropping them, the
// parked packets replay in order at the resume instant, and the whole
// trace is a pure function of the latency model — identical across
// seeds because zero jitter leaves nothing for the seed to decide.
func TestGatePauseResumeTracePinned(t *testing.T) {
	want := []string{
		"p0@1ms", "p1@1ms", "p2@1ms", "pause@1ms",
		"resume@11ms",
		"p3@11ms", "p4@11ms", "p5@11ms", "p6@11ms", "p7@11ms",
	}
	for _, seed := range []int64{1, 7, 42, 1984} {
		got := gateTrace(t, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: trace %v, want %v", seed, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: trace[%d] = %q, want %q (full: %v)", seed, i, got[i], want[i], got)
			}
		}
	}
}

// A gated stream conn parks chunks while blocked and replays them in
// send order after resume — TCP semantics survive the pause.
func TestGatedStreamOrderAcrossPause(t *testing.T) {
	sim := simnet.New(simnet.WithLatency(time.Millisecond, 0))
	srvNode, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")

	gate := netapi.NewFlowGate()
	gated := netapi.Gated(srvNode, gate)

	var got []string
	l, err := gated.ListenStream(9000, nil, func(c netapi.Conn, chunk []byte) {
		if chunk != nil {
			got = append(got, string(chunk))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	conn, err := cliNode.DialStream(netapi.Addr{IP: "10.0.0.5", Port: 9000}, func(netapi.Conn, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	gate.Pause()
	for i := 0; i < 5; i++ {
		if err := conn.Send([]byte{'c', '0' + byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(5 * time.Millisecond)
	if len(got) != 0 {
		t.Fatalf("recv saw %v while gate blocked", got)
	}
	// Resume mid-stream: parked chunks replay first, then the two sent
	// after the resume, still in send order.
	gate.Resume()
	for i := 5; i < 7; i++ {
		if err := conn.Send([]byte{'c', '0' + byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunToQuiescence()
	want := []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
