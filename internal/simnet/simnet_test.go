package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"starlink/internal/netapi"
)

func TestVirtualClockAdvances(t *testing.T) {
	sim := New()
	n, err := sim.NewNode("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	start := n.Now()
	fired := false
	n.After(5*time.Second, func() { fired = true })
	sim.Run(10 * time.Second)
	if !fired {
		t.Fatal("timer did not fire")
	}
	if got := n.Now().Sub(start); got != 10*time.Second {
		t.Fatalf("clock advanced %v, want 10s", got)
	}
}

func TestTimerCancel(t *testing.T) {
	sim := New()
	n, _ := sim.NewNode("10.0.0.1")
	fired := false
	id := n.After(time.Second, func() { fired = true })
	n.Cancel(id)
	sim.Run(2 * time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	n.Cancel(netapi.TimerID(9999)) // unknown id is a no-op
}

func TestTimerOrdering(t *testing.T) {
	sim := New()
	n, _ := sim.NewNode("10.0.0.1")
	var order []int
	n.After(3*time.Second, func() { order = append(order, 3) })
	n.After(1*time.Second, func() { order = append(order, 1) })
	n.After(2*time.Second, func() { order = append(order, 2) })
	sim.RunToQuiescence()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestUnicastUDP(t *testing.T) {
	sim := New()
	a, _ := sim.NewNode("10.0.0.1")
	b, _ := sim.NewNode("10.0.0.2")

	var got []netapi.Packet
	bs, err := b.OpenUDP(4000, func(p netapi.Packet) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	as, err := a.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Send(bs.LocalAddr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if len(got) != 1 {
		t.Fatalf("packets = %d", len(got))
	}
	if string(got[0].Data) != "hello" {
		t.Fatalf("data = %q", got[0].Data)
	}
	if got[0].From != as.LocalAddr() {
		t.Fatalf("from = %v", got[0].From)
	}
}

func TestUDPToUnboundPortIsDropped(t *testing.T) {
	sim := New()
	a, _ := sim.NewNode("10.0.0.1")
	as, _ := a.OpenUDP(0, func(netapi.Packet) {})
	if err := as.Send(netapi.Addr{IP: "10.0.0.9", Port: 1}, []byte("x")); err != nil {
		t.Fatal(err) // silently dropped, like real UDP
	}
	sim.RunToQuiescence()
	if sim.PacketsDropped != 1 {
		t.Fatalf("dropped = %d", sim.PacketsDropped)
	}
}

func TestMulticastFanout(t *testing.T) {
	sim := New()
	group := netapi.Addr{IP: "239.255.255.253", Port: 427}

	var recvA, recvB int
	a, _ := sim.NewNode("10.0.0.1")
	b, _ := sim.NewNode("10.0.0.2")
	c, _ := sim.NewNode("10.0.0.3")
	if _, err := a.JoinGroup(group, func(netapi.Packet) { recvA++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.JoinGroup(group, func(netapi.Packet) { recvB++ }); err != nil {
		t.Fatal(err)
	}
	cs, _ := c.OpenUDP(0, func(netapi.Packet) {})
	if err := cs.Send(group, []byte("query")); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if recvA != 1 || recvB != 1 {
		t.Fatalf("recvA=%d recvB=%d", recvA, recvB)
	}
}

func TestJoinGroupRejectsUnicastAddr(t *testing.T) {
	sim := New()
	a, _ := sim.NewNode("10.0.0.1")
	if _, err := a.JoinGroup(netapi.Addr{IP: "10.0.0.2", Port: 1}, func(netapi.Packet) {}); err == nil {
		t.Fatal("unicast join should fail")
	}
}

func TestGroupMemberReceivesUnicastReply(t *testing.T) {
	// SLP pattern: service joins group; client multicasts; service
	// replies unicast to the client's source address.
	sim := New()
	group := netapi.Addr{IP: "239.255.255.253", Port: 427}
	svcNode, _ := sim.NewNode("10.0.0.2")
	cliNode, _ := sim.NewNode("10.0.0.1")

	var svcSock netapi.UDPSocket
	svcSock, err := svcNode.JoinGroup(group, func(p netapi.Packet) {
		if err := svcSock.Send(p.From, []byte("reply:"+string(p.Data))); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var got string
	cliSock, _ := cliNode.OpenUDP(0, func(p netapi.Packet) { got = string(p.Data) })
	if err := cliSock.Send(group, []byte("req")); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if got != "reply:req" {
		t.Fatalf("got %q", got)
	}
}

func TestSocketClose(t *testing.T) {
	sim := New()
	a, _ := sim.NewNode("10.0.0.1")
	b, _ := sim.NewNode("10.0.0.2")
	recv := 0
	bs, _ := b.OpenUDP(4000, func(netapi.Packet) { recv++ })
	as, _ := a.OpenUDP(0, func(netapi.Packet) {})
	if err := as.Send(bs.LocalAddr(), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if recv != 0 {
		t.Fatal("closed socket received")
	}
	if err := bs.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := as.Close(); err != nil {
		t.Fatal(err)
	}
	if err := as.Send(netapi.Addr{IP: "10.0.0.2", Port: 4000}, []byte("x")); err == nil {
		t.Fatal("send on closed socket should fail")
	}
	// Port is reusable after close.
	if _, err := b.OpenUDP(4000, func(netapi.Packet) {}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateBindFails(t *testing.T) {
	sim := New()
	a, _ := sim.NewNode("10.0.0.1")
	if _, err := a.OpenUDP(4000, func(netapi.Packet) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OpenUDP(4000, func(netapi.Packet) {}); err == nil {
		t.Fatal("duplicate bind should fail")
	}
}

func TestDuplicateNodeFails(t *testing.T) {
	sim := New()
	if _, err := sim.NewNode("10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewNode("10.0.0.1"); err == nil {
		t.Fatal("duplicate node should fail")
	}
	if _, err := sim.NewNode(""); err == nil {
		t.Fatal("empty IP should fail")
	}
}

func TestStreamEcho(t *testing.T) {
	sim := New()
	srvNode, _ := sim.NewNode("10.0.0.2")
	cliNode, _ := sim.NewNode("10.0.0.1")

	_, err := srvNode.ListenStream(80, nil, func(c netapi.Conn, data []byte) {
		if data == nil {
			return
		}
		if err := c.Send(append([]byte("echo:"), data...)); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var got string
	conn, err := cliNode.DialStream(netapi.Addr{IP: "10.0.0.2", Port: 80}, func(c netapi.Conn, data []byte) {
		if data != nil {
			got += string(data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if got != "echo:ping" {
		t.Fatalf("got %q", got)
	}
}

func TestStreamConnectionRefused(t *testing.T) {
	sim := New()
	a, _ := sim.NewNode("10.0.0.1")
	if _, err := a.DialStream(netapi.Addr{IP: "10.0.0.2", Port: 81}, func(netapi.Conn, []byte) {}); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func TestStreamCloseSignalsPeer(t *testing.T) {
	sim := New()
	srvNode, _ := sim.NewNode("10.0.0.2")
	cliNode, _ := sim.NewNode("10.0.0.1")
	closed := false
	_, err := srvNode.ListenStream(80, nil, func(c netapi.Conn, data []byte) {
		if data == nil {
			closed = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := cliNode.DialStream(netapi.Addr{IP: "10.0.0.2", Port: 80}, func(netapi.Conn, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if !closed {
		t.Fatal("peer not notified of close")
	}
	if err := conn.Send([]byte("x")); err == nil {
		t.Fatal("send after close should fail")
	}
}

func TestListenerAcceptCallback(t *testing.T) {
	sim := New()
	srvNode, _ := sim.NewNode("10.0.0.2")
	cliNode, _ := sim.NewNode("10.0.0.1")
	accepted := 0
	l, err := srvNode.ListenStream(80, func(netapi.Conn) { accepted++ }, func(netapi.Conn, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cliNode.DialStream(netapi.Addr{IP: "10.0.0.2", Port: 80}, func(netapi.Conn, []byte) {}); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if accepted != 1 {
		t.Fatalf("accepted = %d", accepted)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cliNode.DialStream(netapi.Addr{IP: "10.0.0.2", Port: 80}, func(netapi.Conn, []byte) {}); err == nil {
		t.Fatal("dial after listener close should fail")
	}
}

func TestRunUntil(t *testing.T) {
	sim := New()
	n, _ := sim.NewNode("10.0.0.1")
	done := false
	n.After(3*time.Second, func() { done = true })
	if err := sim.RunUntil(func() bool { return done }, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Timeout path.
	n.After(100*time.Second, func() {})
	err := sim.RunUntil(func() bool { return false }, time.Second)
	if err == nil {
		t.Fatal("want timeout error")
	}
	// No-events path.
	sim2 := New()
	if err := sim2.RunUntil(func() bool { return false }, time.Second); err == nil {
		t.Fatal("want no-pending-events error")
	}
}

func TestPacketLossInjection(t *testing.T) {
	sim := New(WithLoss(1.0))
	a, _ := sim.NewNode("10.0.0.1")
	b, _ := sim.NewNode("10.0.0.2")
	recv := 0
	bs, _ := b.OpenUDP(4000, func(netapi.Packet) { recv++ })
	as, _ := a.OpenUDP(0, func(netapi.Packet) {})
	for i := 0; i < 10; i++ {
		if err := as.Send(bs.LocalAddr(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunToQuiescence()
	if recv != 0 {
		t.Fatalf("recv = %d with 100%% loss", recv)
	}
	if sim.PacketsDropped != 10 {
		t.Fatalf("dropped = %d", sim.PacketsDropped)
	}
}

// Property: identical seeds produce identical delivery timestamps —
// the simulator is deterministic.
func TestQuickDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		sim := New(WithSeed(seed))
		a, _ := sim.NewNode("10.0.0.1")
		b, _ := sim.NewNode("10.0.0.2")
		start := sim.Now()
		var stamps []time.Duration
		bs, _ := b.OpenUDP(4000, func(netapi.Packet) {
			stamps = append(stamps, sim.Now().Sub(start))
		})
		as, _ := a.OpenUDP(0, func(netapi.Packet) {})
		for i := 0; i < 5; i++ {
			if err := as.Send(bs.LocalAddr(), []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		sim.RunToQuiescence()
		return stamps
	}
	f := func(seed int64) bool {
		x, y := run(seed), run(seed)
		if len(x) != len(y) || len(x) != 5 {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: datagram payloads are isolated — mutating the sender's
// buffer after Send must not affect the delivered packet.
func TestPayloadIsolation(t *testing.T) {
	sim := New()
	a, _ := sim.NewNode("10.0.0.1")
	b, _ := sim.NewNode("10.0.0.2")
	var got []byte
	bs, _ := b.OpenUDP(4000, func(p netapi.Packet) { got = p.Data })
	as, _ := a.OpenUDP(0, func(netapi.Packet) {})
	buf := []byte("original")
	if err := as.Send(bs.LocalAddr(), buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "mutated!")
	sim.RunToQuiescence()
	if string(got) != "original" {
		t.Fatalf("got %q", got)
	}
}

func TestLatencyBounds(t *testing.T) {
	base, jitter := time.Millisecond, 2*time.Millisecond
	sim := New(WithLatency(base, jitter))
	a, _ := sim.NewNode("10.0.0.1")
	b, _ := sim.NewNode("10.0.0.2")
	start := sim.Now()
	var at time.Duration
	bs, _ := b.OpenUDP(4000, func(netapi.Packet) { at = sim.Now().Sub(start) })
	as, _ := a.OpenUDP(0, func(netapi.Packet) {})
	if err := as.Send(bs.LocalAddr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if at < base || at >= base+jitter {
		t.Fatalf("latency %v outside [%v, %v)", at, base, base+jitter)
	}
}
