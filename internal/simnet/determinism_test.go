package simnet_test

import (
	"fmt"
	"testing"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/simnet"
)

// ingestTrace drives one deterministic fan-in: `endpoints` detached
// sockets on one receiver node, one sender blasting a datagram at each
// of them in creation order with zero latency, so every delivery lands
// on the same virtual instant and the order is decided purely by the
// seeded per-domain tiebreak. It returns the delivery order.
func ingestTrace(t *testing.T, seed int64, endpoints int) []int {
	t.Helper()
	sim := simnet.New(simnet.WithSeed(seed), simnet.WithLatency(0, 0))
	recvNode, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatal(err)
	}
	dn := netapi.Detach(recvNode)
	if dn == recvNode {
		t.Fatal("simnet must support netapi.EndpointDetacher")
	}
	var trace []int
	socks := make([]netapi.UDPSocket, endpoints)
	for i := 0; i < endpoints; i++ {
		i := i
		sock, err := dn.OpenUDP(0, func(netapi.Packet) { trace = append(trace, i) })
		if err != nil {
			t.Fatal(err)
		}
		socks[i] = sock
	}
	sendNode, _ := sim.NewNode("10.0.0.1")
	cli, err := sendNode.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range socks {
		if err := cli.Send(s.LocalAddr(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunToQuiescence()
	if len(trace) != endpoints {
		t.Fatalf("delivered %d of %d", len(trace), endpoints)
	}
	return trace
}

// The per-endpoint model keeps the simulator deterministic: the same
// seed yields the same event trace, run after run.
func TestPerEndpointOrderDeterministic(t *testing.T) {
	const endpoints = 12
	for _, seed := range []int64{1, 7, 42} {
		a := ingestTrace(t, seed, endpoints)
		b := ingestTrace(t, seed, endpoints)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("seed %d not deterministic:\n  %v\n  %v", seed, a, b)
		}
	}
}

// Distinct seeds interleave distinct endpoints differently at the same
// virtual instant — the seeded modelling of parallel per-endpoint
// dispatch. (Same-endpoint FIFO order is pinned separately below.)
func TestPerEndpointOrderVariesWithSeed(t *testing.T) {
	const endpoints = 12
	a := ingestTrace(t, 1, endpoints)
	b := ingestTrace(t, 2, endpoints)
	if fmt.Sprint(a) == fmt.Sprint(b) {
		t.Fatalf("seeds 1 and 2 produced identical interleavings: %v", a)
	}
}

// Deliveries to ONE endpoint keep send order even at identical virtual
// instants: the tiebreak is per domain, never within it.
func TestSameEndpointFIFOAtSameInstant(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(3), simnet.WithLatency(0, 0))
	recvNode, _ := sim.NewNode("10.0.0.5")
	var got []byte
	sock, err := netapi.Detach(recvNode).OpenUDP(0, func(pkt netapi.Packet) {
		got = append(got, pkt.Data[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	sendNode, _ := sim.NewNode("10.0.0.1")
	cli, _ := sendNode.OpenUDP(0, func(netapi.Packet) {})
	for i := 0; i < 32; i++ {
		if err := cli.Send(sock.LocalAddr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunToQuiescence()
	if len(got) != 32 {
		t.Fatalf("delivered %d of 32", len(got))
	}
	for i, b := range got {
		if int(b) != i {
			t.Fatalf("delivery %d carried payload %d: same-endpoint FIFO broken", i, b)
		}
	}
}

// Timers of one node and its undetached endpoints share the node's
// root domain under virtual time too: a component's timer scheduled at
// the same instant as its socket delivery keeps a deterministic order.
func TestNodeRootDomainSharedWithTimers(t *testing.T) {
	for run := 0; run < 2; run++ {
		sim := simnet.New(simnet.WithSeed(9), simnet.WithLatency(0, 0))
		nd, _ := sim.NewNode("10.0.0.1")
		var order []string
		sock, err := nd.OpenUDP(0, func(netapi.Packet) { order = append(order, "packet") })
		if err != nil {
			t.Fatal(err)
		}
		nd.After(0, func() { order = append(order, "timer") })
		self, _ := sim.NewNode("10.0.0.2")
		cli, _ := self.OpenUDP(0, func(netapi.Packet) {})
		if err := cli.Send(sock.LocalAddr(), []byte("x")); err != nil {
			t.Fatal(err)
		}
		sim.Run(time.Second)
		if len(order) != 2 {
			t.Fatalf("run %d: saw %v", run, order)
		}
	}
}
