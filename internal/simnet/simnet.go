// Package simnet is a deterministic discrete-event network simulator
// implementing netapi. It provides a virtual clock, configurable
// latency with seeded jitter, packet loss injection, UDP with multicast
// groups, and reliable ordered streams.
//
// Why a simulator: the paper's evaluation (§VI) ran client and service
// on one machine to exclude variable network latency, and its dominant
// timing effects are protocol waits (the 6 s SLP multicast convergence
// window). Virtual time reproduces those waits exactly and makes the
// 100-iteration Fig. 12 runs take milliseconds of wall-clock time while
// remaining fully deterministic for a given seed (see DESIGN.md §5).
//
// Execution model: one event loop, many callers. Run/RunUntil pop
// events from a time-ordered heap on the calling goroutine, and
// protocol logic runs inside those event callbacks; but every node
// operation (Send, After, Cancel, OpenUDP, DialStream, ...) is safe to
// call from any goroutine, so components like the concurrent Automata
// Engine may hand payloads to worker goroutines that later transmit.
//
// Per-endpoint ordering (netapi's concurrency contract) is modelled
// deterministically: every event carries the dispatch-domain key of
// the endpoint it delivers to, and events that fall on the same
// virtual instant are ordered by a seeded per-domain tiebreak instead
// of global creation order. Within one domain FIFO order is always
// preserved; across domains the interleaving is a deterministic
// function of the seed — the simulator models "distinct endpoints
// dispatch in parallel" while a given seed still yields a single
// execution. Endpoints opened through a detached node view
// (netapi.Detach) get private domain keys; by default all endpoints
// and timers of a node share the node's root domain, exactly like
// realnet.
//
// Determinism is preserved through the netapi.WorkTracker contract:
// nodes implement WorkAdd/WorkDone, and the event loop refuses to pop
// the next event — or conclude anything about pending events — while
// handed-off work is still in flight. Virtual time therefore never
// advances past the instant at which in-flight work will schedule its
// follow-up events, and a given seed still yields a single execution.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"starlink/internal/netapi"
)

// Option configures the simulator.
type Option func(*Net)

// WithSeed sets the RNG seed for latency jitter, loss decisions and
// the cross-domain event interleaving. The fault plane (see
// InstallFaults) derives its own dedicated RNG from the same seed, so
// fault decisions are just as reproducible without ever perturbing
// the jitter sequence.
func WithSeed(seed int64) Option {
	return func(n *Net) {
		n.rng = rand.New(rand.NewSource(seed))
		n.seed = seed
	}
}

// WithLatency sets the base one-way latency and the maximum additional
// uniform jitter applied per packet.
func WithLatency(base, jitter time.Duration) Option {
	return func(n *Net) { n.latBase, n.latJitter = base, jitter }
}

// WithLoss sets the probability (0..1) that any datagram is dropped.
// Streams are never lossy (TCP semantics).
func WithLoss(p float64) Option {
	return func(n *Net) { n.lossProb = p }
}

// WithStart sets the virtual epoch.
func WithStart(t time.Time) Option {
	return func(n *Net) { n.now = t }
}

type event struct {
	at time.Time
	// tie is the seeded per-domain tiebreak: events for the same
	// dispatch domain share a tie value (so same-domain events at one
	// instant keep FIFO order via seq), while events for distinct
	// domains at the same instant interleave in seeded order —
	// modelling parallel per-endpoint dispatch deterministically.
	tie uint64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	if h[i].tie != h[j].tie {
		return h[i].tie < h[j].tie
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type sockKey struct {
	ip   string
	port int
}

// Net is the simulated network.
//
// Locking: mu guards all simulator state (clock, event heap, sockets,
// groups, listeners, timers, RNG, counters). Event callbacks run with
// mu released, so they may freely call back into any node operation.
// workMu/workCond implement the netapi.WorkTracker handshake.
type Net struct {
	mu        sync.Mutex
	now       time.Time
	events    eventHeap
	seq       uint64
	seed      int64
	domainSeq uint64
	rng       *rand.Rand
	latBase   time.Duration
	latJitter time.Duration
	lossProb  float64

	nodes     map[string]*node
	udpSocks  map[sockKey]*udpSocket
	groups    map[sockKey]map[sockKey]*udpSocket // group addr -> members
	listeners map[sockKey]*listener
	timers    map[netapi.TimerID]*event
	timerSeq  uint64

	// deferred parks deliveries whose destination endpoint sits behind
	// a blocked flow gate, in arrival order per gate — the simulated
	// analogue of bytes waiting in a paused read loop's kernel buffer.
	// gateSubs records which gates already have a reopen subscription.
	deferred map[*netapi.FlowGate][]deferredDelivery
	gateSubs map[*netapi.FlowGate]bool

	// faults is the installed fault plan (nil: no faults); trace is
	// the delivery-event trace (nil: disabled); leased switches UDP
	// deliveries to pooled leased buffers. See fault.go.
	faults *faultState
	trace  *eventTrace
	leased bool

	workMu   sync.Mutex
	workCond *sync.Cond
	inflight int

	// Stats counters for tests and diagnostics; read them only while
	// the simulation is not being driven.
	PacketsSent    int
	PacketsDropped int
	// PacketsDeferred counts deliveries parked at least once behind a
	// blocked flow gate (they still deliver after the gate reopens).
	PacketsDeferred int
}

// deferredDelivery is one parked delivery: the dispatch domain it
// belongs to and the continuation that retries it.
type deferredDelivery struct {
	dom uint64
	fn  func()
}

var _ netapi.Runtime = (*Net)(nil)

// New creates a simulator. Defaults: seed 1, latency 200µs ± 300µs
// jitter, no loss, epoch 2011-01-01 (the paper's year).
func New(opts ...Option) *Net {
	n := &Net{
		now:       time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		rng:       rand.New(rand.NewSource(1)),
		seed:      1,
		latBase:   200 * time.Microsecond,
		latJitter: 300 * time.Microsecond,
		nodes:     map[string]*node{},
		udpSocks:  map[sockKey]*udpSocket{},
		groups:    map[sockKey]map[sockKey]*udpSocket{},
		listeners: map[sockKey]*listener{},
		timers:    map[netapi.TimerID]*event{},
		deferred:  map[*netapi.FlowGate][]deferredDelivery{},
		gateSubs:  map[*netapi.FlowGate]bool{},
	}
	n.workCond = sync.NewCond(&n.workMu)
	for _, o := range opts {
		o(n)
	}
	return n
}

// Now returns the current virtual time.
func (n *Net) Now() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// newDomainLocked allocates a fresh dispatch-domain key. Caller holds
// n.mu. Allocation order is deterministic for a given seed because the
// WorkTracker contract serialises the goroutines that create
// endpoints against the event loop.
func (n *Net) newDomainLocked() uint64 {
	n.domainSeq++
	return n.domainSeq
}

// tieFor derives the seeded per-domain tiebreak from a domain key
// (splitmix64 of seed ^ key): stable for a given seed, with no draw
// from the shared jitter RNG, so adding domains never perturbs
// latency sampling.
func (n *Net) tieFor(key uint64) uint64 {
	z := uint64(n.seed) ^ (key * 0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// scheduleDomLocked enqueues fn at now+d on a dispatch domain. Caller
// holds n.mu.
func (n *Net) scheduleDomLocked(d time.Duration, dom uint64, fn func()) *event {
	if d < 0 {
		d = 0
	}
	n.seq++
	e := &event{at: n.now.Add(d), tie: n.tieFor(dom), seq: n.seq, fn: fn}
	heap.Push(&n.events, e)
	return e
}

// scheduleLocked enqueues fn at now+d on the runtime's own domain
// (key 0) — internal bookkeeping events with no endpoint affinity.
// Caller holds n.mu.
func (n *Net) scheduleLocked(d time.Duration, fn func()) *event {
	return n.scheduleDomLocked(d, 0, fn)
}

// deferLocked parks a delivery behind a blocked gate, installing a
// reopen subscription on first use. Caller holds n.mu. Parked
// continuations keep FIFO order per gate; each re-checks the gate when
// it finally runs, so a gate that re-blocks re-parks them.
func (n *Net) deferLocked(g *netapi.FlowGate, dom uint64, fn func()) {
	n.PacketsDeferred++
	n.deferred[g] = append(n.deferred[g], deferredDelivery{dom: dom, fn: fn})
	if !n.gateSubs[g] {
		n.gateSubs[g] = true
		g.Notify(func() { n.flushGate(g) })
	}
}

// flushGate reschedules every delivery parked behind g at the current
// virtual instant, preserving arrival order. It runs from the gate's
// reopen notification — in practice from the ingest worker that drained
// the queue below its low watermark, whose WorkTracker hold keeps
// virtual time parked, so the flush lands deterministically.
func (n *Net) flushGate(g *netapi.FlowGate) {
	n.mu.Lock()
	pend := n.deferred[g]
	delete(n.deferred, g)
	for _, d := range pend {
		n.scheduleDomLocked(0, d.dom, d.fn)
	}
	n.mu.Unlock()
}

// latencyLocked draws a per-packet one-way delay. Caller holds n.mu.
func (n *Net) latencyLocked() time.Duration {
	d := n.latBase
	if n.latJitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.latJitter)))
	}
	return d
}

// WorkAdd registers one unit of in-flight off-dispatcher work
// (netapi.WorkTracker).
func (n *Net) WorkAdd() {
	n.workMu.Lock()
	n.inflight++
	n.workMu.Unlock()
}

// WorkDone retires one unit of in-flight work (netapi.WorkTracker).
func (n *Net) WorkDone() {
	n.workMu.Lock()
	n.inflight--
	if n.inflight < 0 {
		n.workMu.Unlock()
		panic("simnet: WorkDone without matching WorkAdd")
	}
	if n.inflight == 0 {
		n.workCond.Broadcast()
	}
	n.workMu.Unlock()
}

// waitIdle blocks until no handed-off work is in flight. Acquiring
// workMu here also publishes every write the finished workers made.
func (n *Net) waitIdle() {
	n.workMu.Lock()
	for n.inflight > 0 {
		n.workCond.Wait()
	}
	n.workMu.Unlock()
}

// popLocked removes and returns the next live event, or nil. Caller
// holds n.mu; the clock is advanced to the event's timestamp.
func (n *Net) popLocked() *event {
	for len(n.events) > 0 {
		e := heap.Pop(&n.events).(*event)
		if e.fn == nil { // cancelled
			continue
		}
		n.now = e.at
		return e
	}
	return nil
}

// step executes the next event; reports false when none remain.
func (n *Net) step() bool {
	n.mu.Lock()
	e := n.popLocked()
	n.mu.Unlock()
	if e == nil {
		return false
	}
	e.fn()
	return true
}

// peekLocked skips cancelled events and returns the next timestamp.
func (n *Net) peekLocked() (time.Time, bool) {
	for len(n.events) > 0 {
		if n.events[0].fn == nil {
			heap.Pop(&n.events)
			continue
		}
		return n.events[0].at, true
	}
	return time.Time{}, false
}

// Run drives the simulation for d of virtual time.
func (n *Net) Run(d time.Duration) {
	n.mu.Lock()
	deadline := n.now.Add(d)
	n.mu.Unlock()
	for {
		n.waitIdle()
		n.mu.Lock()
		at, ok := n.peekLocked()
		if !ok || at.After(deadline) {
			if n.now.Before(deadline) {
				n.now = deadline
			}
			n.mu.Unlock()
			return
		}
		e := n.popLocked()
		n.mu.Unlock()
		e.fn()
	}
}

// RunUntil drives the simulation until cond holds or timeout of virtual
// time elapses.
func (n *Net) RunUntil(cond func() bool, timeout time.Duration) error {
	n.mu.Lock()
	deadline := n.now.Add(timeout)
	n.mu.Unlock()
	for {
		n.waitIdle()
		if cond() {
			return nil
		}
		n.mu.Lock()
		at, ok := n.peekLocked()
		if !ok {
			now := n.now
			n.mu.Unlock()
			return fmt.Errorf("simnet: RunUntil: no pending events and condition not met at %s", now.Format(time.RFC3339Nano))
		}
		if at.After(deadline) {
			n.mu.Unlock()
			return fmt.Errorf("simnet: RunUntil: timeout after %s", timeout)
		}
		e := n.popLocked()
		n.mu.Unlock()
		e.fn()
	}
}

// RunToQuiescence drains every pending event and waits out all
// in-flight off-dispatcher work.
func (n *Net) RunToQuiescence() {
	for {
		n.waitIdle()
		if !n.step() {
			return
		}
	}
}

// NewNode creates a simulated host.
func (n *Net) NewNode(ip string) (netapi.Node, error) {
	if ip == "" {
		return nil, fmt.Errorf("simnet: node needs an IP")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.nodes[ip]; exists {
		return nil, fmt.Errorf("simnet: node %s already exists", ip)
	}
	nd := &node{net: n, ip: ip, nextEphemeral: 32768, domKey: n.newDomainLocked()}
	n.nodes[ip] = nd
	return nd, nil
}

type node struct {
	net           *Net
	ip            string
	nextEphemeral int
	closed        bool
	// domKey is the node's root dispatch domain: endpoints opened
	// directly on the node, and its timers, deliver there.
	domKey uint64
}

var (
	_ netapi.Node             = (*node)(nil)
	_ netapi.WorkTracker      = (*node)(nil)
	_ netapi.EndpointDetacher = (*node)(nil)
	_ netapi.FlowLimiter      = (*node)(nil)
)

// DetachEndpoints returns a view of the node whose endpoints each get
// a private dispatch-domain key (netapi.EndpointDetacher): their
// deliveries interleave independently in the seeded event order,
// modelling parallel per-endpoint dispatch.
func (nd *node) DetachEndpoints() netapi.Node { return &detachedNode{node: nd} }

// GateEndpoints returns a view of the node whose subsequently opened
// ingress endpoints honor the flow gate (netapi.FlowLimiter): while
// the gate is blocked their deliveries are parked — modelling a paused
// read loop — and replayed in order when it reopens. Egress
// (DialStream) is never gated.
func (nd *node) GateEndpoints(g *netapi.FlowGate) netapi.Node {
	return &gatedNode{node: nd, gate: g}
}

// detachedNode is a node view for thread-safe components.
type detachedNode struct{ *node }

var (
	_ netapi.Node             = (*detachedNode)(nil)
	_ netapi.WorkTracker      = (*detachedNode)(nil)
	_ netapi.EndpointDetacher = (*detachedNode)(nil)
	_ netapi.FlowLimiter      = (*detachedNode)(nil)
)

func (d *detachedNode) DetachEndpoints() netapi.Node { return d }

// GateEndpoints on a detached view keeps the detachment: endpoints are
// gated AND get private dispatch domains.
func (d *detachedNode) GateEndpoints(g *netapi.FlowGate) netapi.Node {
	return &gatedNode{node: d.node, detached: true, gate: g}
}

func (d *detachedNode) OpenUDP(port int, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	d.net.mu.Lock()
	defer d.net.mu.Unlock()
	return d.node.openUDPLocked(d.net.newDomainLocked(), nil, port, h)
}

func (d *detachedNode) JoinGroup(group netapi.Addr, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	return d.node.joinGroup(true, nil, group, h)
}

func (d *detachedNode) ListenStream(port int, accept netapi.ConnHandler, recv netapi.StreamHandler) (netapi.Closer, error) {
	return d.node.listenStream(true, nil, port, accept, recv)
}

func (d *detachedNode) DialStream(to netapi.Addr, recv netapi.StreamHandler) (netapi.Conn, error) {
	return d.node.dialStream(true, to, recv)
}

// gatedNode is a node view whose ingress endpoints honor a flow gate;
// with detached set they also get private dispatch-domain keys (the
// combination the Automata Engine uses).
type gatedNode struct {
	*node
	detached bool
	gate     *netapi.FlowGate
}

var (
	_ netapi.Node             = (*gatedNode)(nil)
	_ netapi.WorkTracker      = (*gatedNode)(nil)
	_ netapi.EndpointDetacher = (*gatedNode)(nil)
	_ netapi.FlowLimiter      = (*gatedNode)(nil)
)

// DetachEndpoints keeps the gate and adds per-endpoint domains.
func (g *gatedNode) DetachEndpoints() netapi.Node {
	return &gatedNode{node: g.node, detached: true, gate: g.gate}
}

// GateEndpoints rebinds the view to another gate.
func (g *gatedNode) GateEndpoints(fg *netapi.FlowGate) netapi.Node {
	return &gatedNode{node: g.node, detached: g.detached, gate: fg}
}

// domKeyLocked picks the dispatch-domain key for a newly opened
// endpoint. Caller holds net.mu.
func (g *gatedNode) domKeyLocked() uint64 {
	if g.detached {
		return g.net.newDomainLocked()
	}
	return g.node.domKey
}

func (g *gatedNode) OpenUDP(port int, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	g.net.mu.Lock()
	defer g.net.mu.Unlock()
	return g.node.openUDPLocked(g.domKeyLocked(), g.gate, port, h)
}

func (g *gatedNode) JoinGroup(group netapi.Addr, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	return g.node.joinGroup(g.detached, g.gate, group, h)
}

func (g *gatedNode) ListenStream(port int, accept netapi.ConnHandler, recv netapi.StreamHandler) (netapi.Closer, error) {
	return g.node.listenStream(g.detached, g.gate, port, accept, recv)
}

func (g *gatedNode) DialStream(to netapi.Addr, recv netapi.StreamHandler) (netapi.Conn, error) {
	return g.node.dialStream(g.detached, to, recv)
}

func (nd *node) IP() string { return nd.ip }

func (nd *node) Now() time.Time { return nd.net.Now() }

// WorkAdd / WorkDone expose the runtime's work tracker on the node
// (netapi.WorkTracker).
func (nd *node) WorkAdd()  { nd.net.WorkAdd() }
func (nd *node) WorkDone() { nd.net.WorkDone() }

func (nd *node) After(d time.Duration, fn func()) netapi.TimerID {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	e := nd.net.scheduleDomLocked(d, nd.domKey, fn)
	nd.net.timerSeq++
	id := netapi.TimerID(nd.net.timerSeq)
	nd.net.timers[id] = e
	return id
}

func (nd *node) Cancel(id netapi.TimerID) {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	if e, ok := nd.net.timers[id]; ok {
		e.fn = nil
		delete(nd.net.timers, id)
	}
}

// Close releases the node: every UDP socket and stream listener bound
// on its IP is closed and the IP becomes available to NewNode again.
// Stream connections are owned by their openers (they close with the
// session or peer that created them) and are left to those owners.
func (nd *node) Close() error {
	nd.net.mu.Lock()
	if nd.closed {
		nd.net.mu.Unlock()
		return nil
	}
	nd.closed = true
	var socks []*udpSocket
	var lns []*listener
	for _, s := range nd.net.udpSocks {
		if s.node == nd {
			socks = append(socks, s)
		}
	}
	for _, l := range nd.net.listeners {
		if l.node == nd {
			lns = append(lns, l)
		}
	}
	// Deregister only this node: a replacement node re-created at the
	// same IP after an earlier Close must not be swept away.
	if nd.net.nodes[nd.ip] == nd {
		delete(nd.net.nodes, nd.ip)
	}
	nd.net.mu.Unlock()
	for _, s := range socks {
		_ = s.Close()
	}
	for _, l := range lns {
		_ = l.Close()
	}
	return nil
}

// allocPortLocked picks a free ephemeral port. Caller holds net.mu.
func (nd *node) allocPortLocked() int {
	for {
		p := nd.nextEphemeral
		nd.nextEphemeral++
		if _, taken := nd.net.udpSocks[sockKey{nd.ip, p}]; !taken {
			if _, taken := nd.net.listeners[sockKey{nd.ip, p}]; !taken {
				return p
			}
		}
	}
}

// ---------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------

type udpSocket struct {
	net     *Net
	node    *node
	domKey  uint64
	addr    netapi.Addr
	handler netapi.PacketHandler
	// gate, when non-nil, parks deliveries while blocked (the
	// simulated analogue of a paused transport read loop).
	gate   *netapi.FlowGate
	closed bool
	groups []sockKey
}

var _ netapi.UDPSocket = (*udpSocket)(nil)

func (nd *node) OpenUDP(port int, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return nd.openUDPLocked(nd.domKey, nil, port, h)
}

func (nd *node) openUDPLocked(dom uint64, gate *netapi.FlowGate, port int, h netapi.PacketHandler) (*udpSocket, error) {
	if h == nil {
		return nil, fmt.Errorf("simnet: OpenUDP needs a handler")
	}
	if port == 0 {
		port = nd.allocPortLocked()
	}
	key := sockKey{nd.ip, port}
	if _, taken := nd.net.udpSocks[key]; taken {
		return nil, fmt.Errorf("simnet: %s:%d already bound", nd.ip, port)
	}
	s := &udpSocket{net: nd.net, node: nd, domKey: dom, addr: netapi.Addr{IP: nd.ip, Port: port}, handler: h, gate: gate}
	nd.net.udpSocks[key] = s
	return s, nil
}

func (nd *node) JoinGroup(group netapi.Addr, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	return nd.joinGroup(false, nil, group, h)
}

func (nd *node) joinGroup(detached bool, gate *netapi.FlowGate, group netapi.Addr, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	if !group.IsMulticast() {
		return nil, fmt.Errorf("simnet: %s is not a multicast group", group)
	}
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	dom := nd.domKey
	if detached {
		dom = nd.net.newDomainLocked()
	}
	s, err := nd.openUDPLocked(dom, gate, 0, h)
	if err != nil {
		return nil, err
	}
	gk := sockKey{group.IP, group.Port}
	members := nd.net.groups[gk]
	if members == nil {
		members = map[sockKey]*udpSocket{}
		nd.net.groups[gk] = members
	}
	sk := sockKey{s.addr.IP, s.addr.Port}
	members[sk] = s
	s.groups = append(s.groups, gk)
	return s, nil
}

func (s *udpSocket) LocalAddr() netapi.Addr { return s.addr }

func (s *udpSocket) Send(to netapi.Addr, data []byte) error {
	s.net.mu.Lock()
	defer s.net.mu.Unlock()
	if s.closed {
		return fmt.Errorf("simnet: send on closed socket %s", s.addr)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	if to.IsMulticast() {
		members := s.net.groups[sockKey{to.IP, to.Port}]
		for _, m := range sortedMembers(members) {
			s.deliverLocked(m, cp, to)
		}
		return nil
	}
	dst, ok := s.net.udpSocks[sockKey{to.IP, to.Port}]
	if !ok {
		// Real UDP silently drops datagrams to unbound ports.
		s.net.PacketsDropped++
		s.net.traceLocked("udp", "drop unbound", s.addr, to, len(data))
		return nil
	}
	s.deliverLocked(dst, cp, to)
	return nil
}

// sortedMembers returns group members in deterministic order.
func sortedMembers(members map[sockKey]*udpSocket) []*udpSocket {
	out := make([]*udpSocket, 0, len(members))
	for _, k := range sortedKeys(members) {
		out = append(out, members[k])
	}
	return out
}

func sortedKeys(m map[sockKey]*udpSocket) []sockKey {
	keys := make([]sockKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0; j-- {
			a, b := keys[j-1], keys[j]
			if a.ip < b.ip || (a.ip == b.ip && a.port <= b.port) {
				break
			}
			keys[j-1], keys[j] = b, a
		}
	}
	return keys
}

func (s *udpSocket) deliverLocked(dst *udpSocket, data []byte, to netapi.Addr) {
	s.net.PacketsSent++
	from := s.addr
	// Baseline loss draws from the shared jitter RNG exactly as it
	// always has; fault decisions below draw only from the dedicated
	// fault RNG, so an installed plan never perturbs these draws.
	if s.net.lossProb > 0 && s.net.rng.Float64() < s.net.lossProb {
		s.net.PacketsDropped++
		s.net.traceLocked("udp", "drop loss", from, dst.addr, len(data))
		return
	}
	// The latency draw happens before the fault verdict is applied, so
	// a fault-dropped packet consumes exactly the draws a no-plan run
	// would — traffic the plan does not match keeps its exact timing.
	lat := s.net.latencyLocked()
	var v faultVerdict
	if s.net.faults != nil {
		v = s.net.faults.udp(s.net.now, from, dst.addr, s.net.defaultReorderLocked())
	}
	if v.drop {
		s.net.PacketsDropped++
		s.net.traceLocked("udp", "drop "+v.dropKind, from, dst.addr, len(data))
		return
	}
	lat += v.extra
	s.net.scheduleUDPLocked(dst, from, to, data, lat)
	if v.dup {
		// The duplicate is a full independent delivery owning its own
		// leased buffer (when leased delivery is on) — exactly the
		// hazard a receiver must survive.
		s.net.PacketsSent++
		s.net.traceLocked("udp", "dup", from, dst.addr, len(data))
		s.net.scheduleUDPLocked(dst, from, to, data, lat+v.dupDelay)
	}
}

// scheduleUDPLocked schedules one UDP delivery at lat from now. Caller
// holds Net.mu. The delivery re-checks destination and gate state when
// its event fires, and — with leased delivery on — hands the handler a
// pooled buffer under the standard lease-flag protocol (the simulated
// twin of realnet's read loop).
func (n *Net) scheduleUDPLocked(dst *udpSocket, from, to netapi.Addr, data []byte, lat time.Duration) {
	var deliver func()
	deliver = func() {
		n.mu.Lock()
		if dst.closed {
			n.traceLocked("udp", "drop closed", from, dst.addr, len(data))
			n.mu.Unlock()
			return
		}
		if g := dst.gate; g != nil && g.Blocked() {
			// The destination's transport is paused: park the delivery
			// until the gate reopens (it re-checks on replay).
			n.traceLocked("udp", "defer", from, dst.addr, len(data))
			n.deferLocked(g, dst.domKey, deliver)
			n.mu.Unlock()
			return
		}
		n.traceLocked("udp", "deliver", from, dst.addr, len(data))
		leased := n.leased
		n.mu.Unlock()
		if !leased {
			dst.handler(netapi.Packet{From: from, To: to, Data: data})
			return
		}
		buf := netapi.NewBuffer()
		m := copy(buf.Backing(), data)
		buf.SetFilled(m)
		// The lease-transfer signal lives in this delivery's own frame
		// (see netapi.Buffer): the handler may release and the pool
		// re-lease the buffer before we look at it again.
		retained := false
		pkt := netapi.Packet{From: from, To: to, Data: buf.Bytes(), Buf: buf}
		pkt.BindLeaseFlag(&retained)
		dst.handler(pkt)
		if !retained {
			buf.Release()
		}
	}
	n.scheduleDomLocked(lat, dst.domKey, deliver)
}

func (s *udpSocket) Close() error {
	s.net.mu.Lock()
	defer s.net.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	delete(s.net.udpSocks, sockKey{s.addr.IP, s.addr.Port})
	for _, gk := range s.groups {
		delete(s.net.groups[gk], sockKey{s.addr.IP, s.addr.Port})
	}
	return nil
}

// ---------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------

type listener struct {
	net    *Net
	node   *node
	addr   netapi.Addr
	accept netapi.ConnHandler
	recv   netapi.StreamHandler
	closed bool
	// detached gives every accepted connection a private dispatch
	// domain (the listener was opened through a detached node view).
	detached bool
	// gate, when non-nil, is inherited by every accepted connection:
	// their deliveries park while it is blocked.
	gate *netapi.FlowGate
}

func (nd *node) ListenStream(port int, accept netapi.ConnHandler, recv netapi.StreamHandler) (netapi.Closer, error) {
	return nd.listenStream(false, nil, port, accept, recv)
}

func (nd *node) listenStream(detached bool, gate *netapi.FlowGate, port int, accept netapi.ConnHandler, recv netapi.StreamHandler) (netapi.Closer, error) {
	if recv == nil {
		return nil, fmt.Errorf("simnet: ListenStream needs a recv handler")
	}
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	if port == 0 {
		port = nd.allocPortLocked()
	}
	key := sockKey{nd.ip, port}
	if _, taken := nd.net.listeners[key]; taken {
		return nil, fmt.Errorf("simnet: %s:%d already listening", nd.ip, port)
	}
	l := &listener{net: nd.net, node: nd, addr: netapi.Addr{IP: nd.ip, Port: port}, accept: accept, recv: recv, detached: detached, gate: gate}
	nd.net.listeners[key] = l
	return l, nil
}

func (l *listener) Close() error {
	l.net.mu.Lock()
	defer l.net.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	delete(l.net.listeners, sockKey{l.addr.IP, l.addr.Port})
	return nil
}

// conn is one direction-aware endpoint of a stream.
type conn struct {
	net    *Net
	domKey uint64
	local  netapi.Addr
	remote netapi.Addr
	peer   *conn
	recv   netapi.StreamHandler
	closed bool
	// gate, when non-nil (accepted side of a gated listener), parks
	// inbound deliveries while blocked. pending counts this conn's
	// parked chunks so later arrivals queue behind them even after the
	// gate reopens — preserving TCP's in-order delivery.
	gate    *netapi.FlowGate
	pending int
	// lastDelivery enforces TCP's in-order delivery: a chunk never
	// arrives before one sent earlier on the same connection, even
	// though each draws an independent latency sample.
	lastDelivery time.Time
}

var _ netapi.Conn = (*conn)(nil)

func (nd *node) DialStream(to netapi.Addr, recv netapi.StreamHandler) (netapi.Conn, error) {
	return nd.dialStream(false, to, recv)
}

func (nd *node) dialStream(detached bool, to netapi.Addr, recv netapi.StreamHandler) (netapi.Conn, error) {
	if recv == nil {
		return nil, fmt.Errorf("simnet: DialStream needs a recv handler")
	}
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	l, ok := nd.net.listeners[sockKey{to.IP, to.Port}]
	if !ok {
		return nil, fmt.Errorf("simnet: connection refused: %s", to)
	}
	var v faultVerdict
	if nd.net.faults != nil {
		v = nd.net.faults.stream(nd.net.now, netapi.Addr{IP: nd.ip}, to)
	}
	if v.refuse {
		// Unhealing partition across the dial path: the SYN never
		// arrives. Fail fast instead of hanging the dialer forever.
		nd.net.traceLocked("strm", "refuse partition", netapi.Addr{IP: nd.ip}, to, 0)
		return nil, fmt.Errorf("simnet: connection refused (partitioned): %s", to)
	}
	clientDom := nd.domKey
	if detached {
		clientDom = nd.net.newDomainLocked()
	}
	serverDom := l.node.domKey
	if l.detached {
		serverDom = nd.net.newDomainLocked()
	}
	local := netapi.Addr{IP: nd.ip, Port: nd.allocPortLocked()}
	client := &conn{net: nd.net, domKey: clientDom, local: local, remote: to, recv: recv}
	server := &conn{net: nd.net, domKey: serverDom, local: to, remote: local, recv: l.recv, gate: l.gate}
	client.peer, server.peer = server, client
	nd.net.traceLocked("strm", "connect", local, to, 0)
	nd.net.scheduleDomLocked(v.healHold+nd.net.latencyLocked()+v.extra, serverDom, func() {
		nd.net.mu.Lock()
		closed := l.closed
		accept := l.accept
		nd.net.traceLocked("strm", "accept", local, to, 0)
		nd.net.mu.Unlock()
		if closed {
			return
		}
		if accept != nil {
			accept(server)
		}
	})
	return client, nil
}

func (c *conn) LocalAddr() netapi.Addr  { return c.local }
func (c *conn) RemoteAddr() netapi.Addr { return c.remote }

func (c *conn) Send(data []byte) error {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	if c.closed {
		return fmt.Errorf("simnet: send on closed conn %s->%s", c.local, c.remote)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	peer := c.peer
	// Latency is drawn before the fault verdict so a dropped chunk
	// consumes the same shared-RNG draws a no-plan run would (see
	// deliverLocked).
	lat := c.net.latencyLocked()
	var v faultVerdict
	if c.net.faults != nil {
		v = c.net.faults.stream(c.net.now, c.local, c.remote)
	}
	if v.drop {
		// Unhealing partition: the chunk is gone. Real TCP would block
		// the sender and eventually reset; the simulator keeps senders
		// non-blocking, so the connection just goes silent.
		c.net.PacketsDropped++
		c.net.traceLocked("strm", "drop partition", c.local, c.remote, len(data))
		return nil
	}
	if v.healHold > 0 {
		c.net.traceLocked("strm", "stall", c.local, c.remote, len(data))
	}
	at := c.net.now.Add(v.healHold + lat + v.extra)
	if at.Before(c.lastDelivery) {
		at = c.lastDelivery
	}
	c.lastDelivery = at
	parked := false
	var deliver func()
	deliver = func() {
		c.net.mu.Lock()
		if peer.closed {
			if parked {
				peer.pending--
			}
			c.net.mu.Unlock()
			return
		}
		if g := peer.gate; g != nil {
			if g.Blocked() {
				// Park behind the gate. The first park counts into
				// pending so later chunks queue behind this one.
				if !parked {
					parked = true
					peer.pending++
				}
				c.net.deferLocked(g, peer.domKey, deliver)
				c.net.mu.Unlock()
				return
			}
			if !parked && peer.pending > 0 {
				// The gate reopened but earlier chunks are still
				// replaying ahead of us: requeue at the same instant
				// (later seq) to keep TCP's in-order delivery.
				c.net.scheduleDomLocked(0, peer.domKey, deliver)
				c.net.mu.Unlock()
				return
			}
			if parked {
				parked = false
				peer.pending--
			}
		}
		c.net.traceLocked("strm", "chunk", c.local, c.remote, len(cp))
		c.net.mu.Unlock()
		peer.recv(peer, cp)
	}
	c.net.scheduleDomLocked(at.Sub(c.net.now), peer.domKey, deliver)
	return nil
}

func (c *conn) Close() error {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	peer := c.peer
	c.net.traceLocked("strm", "close", c.local, c.remote, 0)
	c.net.scheduleDomLocked(c.net.latencyLocked(), peer.domKey, func() {
		c.net.mu.Lock()
		if peer.closed {
			c.net.mu.Unlock()
			return
		}
		peer.closed = true
		c.net.mu.Unlock()
		peer.recv(peer, nil) // nil data signals close
	})
	return nil
}
