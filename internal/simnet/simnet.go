// Package simnet is a deterministic discrete-event network simulator
// implementing netapi. It provides a virtual clock, configurable
// latency with seeded jitter, packet loss injection, UDP with multicast
// groups, and reliable ordered streams.
//
// Why a simulator: the paper's evaluation (§VI) ran client and service
// on one machine to exclude variable network latency, and its dominant
// timing effects are protocol waits (the 6 s SLP multicast convergence
// window). Virtual time reproduces those waits exactly and makes the
// 100-iteration Fig. 12 runs take milliseconds of wall-clock time while
// remaining fully deterministic for a given seed (see DESIGN.md §5).
//
// Execution model: single-threaded. All protocol logic runs inside
// event callbacks; Run/RunUntil pop events from a time-ordered heap.
// Nothing here is safe for concurrent use from multiple goroutines —
// by design, there are none.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"starlink/internal/netapi"
)

// Option configures the simulator.
type Option func(*Net)

// WithSeed sets the RNG seed for latency jitter and loss decisions.
func WithSeed(seed int64) Option {
	return func(n *Net) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithLatency sets the base one-way latency and the maximum additional
// uniform jitter applied per packet.
func WithLatency(base, jitter time.Duration) Option {
	return func(n *Net) { n.latBase, n.latJitter = base, jitter }
}

// WithLoss sets the probability (0..1) that any datagram is dropped.
// Streams are never lossy (TCP semantics).
func WithLoss(p float64) Option {
	return func(n *Net) { n.lossProb = p }
}

// WithStart sets the virtual epoch.
func WithStart(t time.Time) Option {
	return func(n *Net) { n.now = t }
}

type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type sockKey struct {
	ip   string
	port int
}

// Net is the simulated network.
type Net struct {
	now       time.Time
	events    eventHeap
	seq       uint64
	rng       *rand.Rand
	latBase   time.Duration
	latJitter time.Duration
	lossProb  float64

	nodes     map[string]*node
	udpSocks  map[sockKey]*udpSocket
	groups    map[sockKey]map[sockKey]*udpSocket // group addr -> members
	listeners map[sockKey]*listener
	timers    map[netapi.TimerID]*event
	timerSeq  uint64

	// Stats counters for tests and diagnostics.
	PacketsSent    int
	PacketsDropped int
}

var _ netapi.Runtime = (*Net)(nil)

// New creates a simulator. Defaults: seed 1, latency 200µs ± 300µs
// jitter, no loss, epoch 2011-01-01 (the paper's year).
func New(opts ...Option) *Net {
	n := &Net{
		now:       time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		rng:       rand.New(rand.NewSource(1)),
		latBase:   200 * time.Microsecond,
		latJitter: 300 * time.Microsecond,
		nodes:     map[string]*node{},
		udpSocks:  map[sockKey]*udpSocket{},
		groups:    map[sockKey]map[sockKey]*udpSocket{},
		listeners: map[sockKey]*listener{},
		timers:    map[netapi.TimerID]*event{},
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Now returns the current virtual time.
func (n *Net) Now() time.Time { return n.now }

func (n *Net) schedule(d time.Duration, fn func()) *event {
	if d < 0 {
		d = 0
	}
	n.seq++
	e := &event{at: n.now.Add(d), seq: n.seq, fn: fn}
	heap.Push(&n.events, e)
	return e
}

// latency draws a per-packet one-way delay.
func (n *Net) latency() time.Duration {
	d := n.latBase
	if n.latJitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.latJitter)))
	}
	return d
}

// step executes the next event; reports false when none remain.
func (n *Net) step() bool {
	for len(n.events) > 0 {
		e := heap.Pop(&n.events).(*event)
		if e.fn == nil { // cancelled
			continue
		}
		n.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run drives the simulation for d of virtual time.
func (n *Net) Run(d time.Duration) {
	deadline := n.now.Add(d)
	for len(n.events) > 0 && !n.events[0].at.After(deadline) {
		n.step()
	}
	if n.now.Before(deadline) {
		n.now = deadline
	}
}

// RunUntil drives the simulation until cond holds or timeout of virtual
// time elapses.
func (n *Net) RunUntil(cond func() bool, timeout time.Duration) error {
	deadline := n.now.Add(timeout)
	for !cond() {
		if len(n.events) == 0 {
			return fmt.Errorf("simnet: RunUntil: no pending events and condition not met at %s", n.now.Format(time.RFC3339Nano))
		}
		if n.events[0].at.After(deadline) {
			return fmt.Errorf("simnet: RunUntil: timeout after %s", timeout)
		}
		n.step()
	}
	return nil
}

// RunToQuiescence drains every pending event.
func (n *Net) RunToQuiescence() {
	for n.step() {
	}
}

// NewNode creates a simulated host.
func (n *Net) NewNode(ip string) (netapi.Node, error) {
	if ip == "" {
		return nil, fmt.Errorf("simnet: node needs an IP")
	}
	if _, exists := n.nodes[ip]; exists {
		return nil, fmt.Errorf("simnet: node %s already exists", ip)
	}
	nd := &node{net: n, ip: ip, nextEphemeral: 32768}
	n.nodes[ip] = nd
	return nd, nil
}

type node struct {
	net           *Net
	ip            string
	nextEphemeral int
}

var _ netapi.Node = (*node)(nil)

func (nd *node) IP() string { return nd.ip }

func (nd *node) Now() time.Time { return nd.net.now }

func (nd *node) After(d time.Duration, fn func()) netapi.TimerID {
	e := nd.net.schedule(d, fn)
	nd.net.timerSeq++
	id := netapi.TimerID(nd.net.timerSeq)
	nd.net.timers[id] = e
	return id
}

func (nd *node) Cancel(id netapi.TimerID) {
	if e, ok := nd.net.timers[id]; ok {
		e.fn = nil
		delete(nd.net.timers, id)
	}
}

func (nd *node) allocPort() int {
	for {
		p := nd.nextEphemeral
		nd.nextEphemeral++
		if _, taken := nd.net.udpSocks[sockKey{nd.ip, p}]; !taken {
			if _, taken := nd.net.listeners[sockKey{nd.ip, p}]; !taken {
				return p
			}
		}
	}
}

// ---------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------

type udpSocket struct {
	net     *Net
	node    *node
	addr    netapi.Addr
	handler netapi.PacketHandler
	closed  bool
	groups  []sockKey
}

var _ netapi.UDPSocket = (*udpSocket)(nil)

func (nd *node) OpenUDP(port int, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	if h == nil {
		return nil, fmt.Errorf("simnet: OpenUDP needs a handler")
	}
	if port == 0 {
		port = nd.allocPort()
	}
	key := sockKey{nd.ip, port}
	if _, taken := nd.net.udpSocks[key]; taken {
		return nil, fmt.Errorf("simnet: %s:%d already bound", nd.ip, port)
	}
	s := &udpSocket{net: nd.net, node: nd, addr: netapi.Addr{IP: nd.ip, Port: port}, handler: h}
	nd.net.udpSocks[key] = s
	return s, nil
}

func (nd *node) JoinGroup(group netapi.Addr, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	if !group.IsMulticast() {
		return nil, fmt.Errorf("simnet: %s is not a multicast group", group)
	}
	sock, err := nd.OpenUDP(0, h)
	if err != nil {
		return nil, err
	}
	s := sock.(*udpSocket)
	gk := sockKey{group.IP, group.Port}
	members := nd.net.groups[gk]
	if members == nil {
		members = map[sockKey]*udpSocket{}
		nd.net.groups[gk] = members
	}
	sk := sockKey{s.addr.IP, s.addr.Port}
	members[sk] = s
	s.groups = append(s.groups, gk)
	return s, nil
}

func (s *udpSocket) LocalAddr() netapi.Addr { return s.addr }

func (s *udpSocket) Send(to netapi.Addr, data []byte) error {
	if s.closed {
		return fmt.Errorf("simnet: send on closed socket %s", s.addr)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	if to.IsMulticast() {
		members := s.net.groups[sockKey{to.IP, to.Port}]
		for _, m := range sortedMembers(members) {
			s.deliver(m, cp, to)
		}
		return nil
	}
	dst, ok := s.net.udpSocks[sockKey{to.IP, to.Port}]
	if !ok {
		// Real UDP silently drops datagrams to unbound ports.
		s.net.PacketsDropped++
		return nil
	}
	s.deliver(dst, cp, to)
	return nil
}

// sortedMembers returns group members in deterministic order.
func sortedMembers(members map[sockKey]*udpSocket) []*udpSocket {
	out := make([]*udpSocket, 0, len(members))
	for _, k := range sortedKeys(members) {
		out = append(out, members[k])
	}
	return out
}

func sortedKeys(m map[sockKey]*udpSocket) []sockKey {
	keys := make([]sockKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0; j-- {
			a, b := keys[j-1], keys[j]
			if a.ip < b.ip || (a.ip == b.ip && a.port <= b.port) {
				break
			}
			keys[j-1], keys[j] = b, a
		}
	}
	return keys
}

func (s *udpSocket) deliver(dst *udpSocket, data []byte, to netapi.Addr) {
	s.net.PacketsSent++
	if s.net.lossProb > 0 && s.net.rng.Float64() < s.net.lossProb {
		s.net.PacketsDropped++
		return
	}
	from := s.addr
	s.net.schedule(s.net.latency(), func() {
		if dst.closed {
			return
		}
		dst.handler(netapi.Packet{From: from, To: to, Data: data})
	})
}

func (s *udpSocket) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	delete(s.net.udpSocks, sockKey{s.addr.IP, s.addr.Port})
	for _, gk := range s.groups {
		delete(s.net.groups[gk], sockKey{s.addr.IP, s.addr.Port})
	}
	return nil
}

// ---------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------

type listener struct {
	net    *Net
	node   *node
	addr   netapi.Addr
	accept netapi.ConnHandler
	recv   netapi.StreamHandler
	closed bool
}

func (nd *node) ListenStream(port int, accept netapi.ConnHandler, recv netapi.StreamHandler) (netapi.Closer, error) {
	if recv == nil {
		return nil, fmt.Errorf("simnet: ListenStream needs a recv handler")
	}
	if port == 0 {
		port = nd.allocPort()
	}
	key := sockKey{nd.ip, port}
	if _, taken := nd.net.listeners[key]; taken {
		return nil, fmt.Errorf("simnet: %s:%d already listening", nd.ip, port)
	}
	l := &listener{net: nd.net, node: nd, addr: netapi.Addr{IP: nd.ip, Port: port}, accept: accept, recv: recv}
	nd.net.listeners[key] = l
	return l, nil
}

func (l *listener) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	delete(l.net.listeners, sockKey{l.addr.IP, l.addr.Port})
	return nil
}

// conn is one direction-aware endpoint of a stream.
type conn struct {
	net    *Net
	local  netapi.Addr
	remote netapi.Addr
	peer   *conn
	recv   netapi.StreamHandler
	closed bool
	// lastDelivery enforces TCP's in-order delivery: a chunk never
	// arrives before one sent earlier on the same connection, even
	// though each draws an independent latency sample.
	lastDelivery time.Time
}

var _ netapi.Conn = (*conn)(nil)

func (nd *node) DialStream(to netapi.Addr, recv netapi.StreamHandler) (netapi.Conn, error) {
	if recv == nil {
		return nil, fmt.Errorf("simnet: DialStream needs a recv handler")
	}
	l, ok := nd.net.listeners[sockKey{to.IP, to.Port}]
	if !ok {
		return nil, fmt.Errorf("simnet: connection refused: %s", to)
	}
	local := netapi.Addr{IP: nd.ip, Port: nd.allocPort()}
	client := &conn{net: nd.net, local: local, remote: to, recv: recv}
	server := &conn{net: nd.net, local: to, remote: local, recv: l.recv}
	client.peer, server.peer = server, client
	nd.net.schedule(nd.net.latency(), func() {
		if l.closed {
			return
		}
		if l.accept != nil {
			l.accept(server)
		}
	})
	return client, nil
}

func (c *conn) LocalAddr() netapi.Addr  { return c.local }
func (c *conn) RemoteAddr() netapi.Addr { return c.remote }

func (c *conn) Send(data []byte) error {
	if c.closed {
		return fmt.Errorf("simnet: send on closed conn %s->%s", c.local, c.remote)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	peer := c.peer
	at := c.net.now.Add(c.net.latency())
	if at.Before(c.lastDelivery) {
		at = c.lastDelivery
	}
	c.lastDelivery = at
	c.net.schedule(at.Sub(c.net.now), func() {
		if peer.closed {
			return
		}
		peer.recv(peer, cp)
	})
	return nil
}

func (c *conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	peer := c.peer
	c.net.schedule(c.net.latency(), func() {
		if peer.closed {
			return
		}
		peer.closed = true
		peer.recv(peer, nil) // nil data signals close
	})
	return nil
}
