package registry

import (
	"strings"
	"testing"

	"starlink/internal/models"
)

func TestBuiltinLoadsAllModels(t *testing.T) {
	r, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Protocols(); len(got) != 4 {
		t.Fatalf("protocols = %v", got)
	}
	if got := r.AutomatonNames(); len(got) != 8 {
		t.Fatalf("automata = %v", got)
	}
	want := []string{"bonjour-to-slp", "bonjour-to-upnp", "slp-to-bonjour",
		"slp-to-upnp", "upnp-to-bonjour", "upnp-to-slp"}
	got := r.MergedNames()
	if len(got) != len(want) {
		t.Fatalf("merged = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
}

func TestBuiltinMergedCompile(t *testing.T) {
	r, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.MergedNames() {
		m, err := r.Merged(name)
		if err != nil {
			t.Fatal(err)
		}
		program, err := m.Compile()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(program) < 5 {
			t.Fatalf("%s: suspiciously short program (%d steps)", name, len(program))
		}
		if _, err := r.Codecs(m); err != nil {
			t.Fatalf("%s codecs: %v", name, err)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	r := New()
	if err := r.LoadAutomaton("x", `<Automaton protocol="SLP" initial="a" finals="a"><State name="a"/></Automaton>`); err == nil || !strings.Contains(err.Error(), "MDL") {
		// Either validation fails (no transitions needed?) or MDL missing.
		if err == nil {
			t.Fatal("automaton without MDL should fail")
		}
	}
	if _, err := r.Merged("ghost"); err == nil {
		t.Fatal("unknown merged should fail")
	}
	if _, err := r.Spec("ghost"); err == nil {
		t.Fatal("unknown spec should fail")
	}
	if _, err := r.Automaton("ghost"); err == nil {
		t.Fatal("unknown automaton should fail")
	}
}

func TestRegistryDuplicates(t *testing.T) {
	r, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadMDL(`<MDL protocol="SLP" dialect="binary"><Types><A>Integer</A></Types><Header type="SLP"><A>8</A></Header><Message type="M"><Rule>A=1</Rule></Message></MDL>`); err == nil {
		t.Fatal("duplicate MDL should fail")
	}
}

// TestModelSizes checks the paper's §V-C claim that merged automata
// are compact models ("typically, these automata are around 100 lines
// of XML, but this depends on the complexity of the translation").
func TestModelSizes(t *testing.T) {
	for name, doc := range models.MergedAutomata {
		lines := strings.Count(doc, "\n") + 1
		if lines < 20 || lines > 350 {
			t.Errorf("%s: %d lines of XML, outside the paper's model-scale claim", name, lines)
		}
		t.Logf("%s: %d lines of XML", name, lines)
	}
}
