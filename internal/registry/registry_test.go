package registry

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"starlink/internal/engine"
	"starlink/internal/models"
	"starlink/internal/simnet"
)

func TestBuiltinLoadsAllModels(t *testing.T) {
	r, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Protocols(); len(got) != 4 {
		t.Fatalf("protocols = %v", got)
	}
	if got := r.AutomatonNames(); len(got) != 8 {
		t.Fatalf("automata = %v", got)
	}
	want := []string{"bonjour-to-slp", "bonjour-to-upnp", "slp-to-bonjour",
		"slp-to-upnp", "upnp-to-bonjour", "upnp-to-slp"}
	got := r.MergedNames()
	if len(got) != len(want) {
		t.Fatalf("merged = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
}

func TestBuiltinMergedCompile(t *testing.T) {
	r, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.MergedNames() {
		m, err := r.Merged(name)
		if err != nil {
			t.Fatal(err)
		}
		program, err := m.Compile()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(program) < 5 {
			t.Fatalf("%s: suspiciously short program (%d steps)", name, len(program))
		}
		if _, err := r.Codecs(m); err != nil {
			t.Fatalf("%s codecs: %v", name, err)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	r := New()
	if err := r.LoadAutomaton("x", `<Automaton protocol="SLP" initial="a" finals="a"><State name="a"/></Automaton>`); err == nil || !strings.Contains(err.Error(), "MDL") {
		// Either validation fails (no transitions needed?) or MDL missing.
		if err == nil {
			t.Fatal("automaton without MDL should fail")
		}
	}
	if _, err := r.Merged("ghost"); err == nil {
		t.Fatal("unknown merged should fail")
	}
	if _, err := r.Spec("ghost"); err == nil {
		t.Fatal("unknown spec should fail")
	}
	if _, err := r.Automaton("ghost"); err == nil {
		t.Fatal("unknown automaton should fail")
	}
}

func TestRegistryDuplicates(t *testing.T) {
	r, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadMDL(`<MDL protocol="SLP" dialect="binary"><Types><A>Integer</A></Types><Header type="SLP"><A>8</A></Header><Message type="M"><Rule>A=1</Rule></Message></MDL>`); err == nil {
		t.Fatal("duplicate MDL should fail")
	}
}

// TestModelSizes checks the paper's §V-C claim that merged automata
// are compact models ("typically, these automata are around 100 lines
// of XML, but this depends on the complexity of the translation").
func TestModelSizes(t *testing.T) {
	for name, doc := range models.MergedAutomata {
		lines := strings.Count(doc, "\n") + 1
		if lines < 20 || lines > 350 {
			t.Errorf("%s: %d lines of XML, outside the paper's model-scale claim", name, lines)
		}
		t.Logf("%s: %d lines of XML", name, lines)
	}
}

// altCaseDoc derives a distinct, valid merged-automaton document from
// a builtin case by renaming it.
func altCaseDoc(name string) string {
	return strings.Replace(models.SLPToUPnP, `name="slp-to-upnp"`, `name="`+name+`"`, 1)
}

func TestReplaceUnloadGeneration(t *testing.T) {
	r, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	gen := r.Generation()

	// Identity replace: no mutation, no generation bump (trailing
	// whitespace must not count as change).
	changed, err := r.ReplaceMerged(models.SLPToUPnP + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if changed || r.Generation() != gen {
		t.Fatalf("identity replace mutated: changed=%v gen %d -> %d", changed, gen, r.Generation())
	}

	// New case via Replace: loads it.
	changed, err = r.ReplaceMerged(altCaseDoc("alt-case"))
	if err != nil {
		t.Fatal(err)
	}
	if !changed || r.Generation() == gen {
		t.Fatal("effective replace must mutate and bump the generation")
	}
	c1, err := r.Compiled("alt-case")
	if err != nil {
		t.Fatal(err)
	}
	if c2, _ := r.Compiled("alt-case"); c2 != c1 {
		t.Error("unchanged case must return the cached CompiledCase pointer")
	}

	// Replacing a referenced automaton re-resolves dependents: the
	// cached artifacts must be invalidated.
	doc := models.Automata["slp-server"]
	changed, err = r.ReplaceAutomaton("slp-server", doc+"\n<!-- touched -->")
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("changed automaton doc should apply")
	}
	c3, err := r.Compiled("alt-case")
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Error("automaton replace must invalidate dependent compiled cases")
	}

	// Unload removes the case and its cache entry.
	if err := r.Unload("alt-case"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Merged("alt-case"); err == nil {
		t.Error("unloaded case still resolves")
	}
	if _, err := r.Compiled("alt-case"); err == nil {
		t.Error("unloaded case still compiles")
	}
	if err := r.Unload("alt-case"); err == nil {
		t.Error("double unload should fail")
	}
}

func TestCompiledCaseArtifacts(t *testing.T) {
	r, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Compiled("slp-to-upnp")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Program) < 5 || c.Merged.Name != "slp-to-upnp" {
		t.Fatalf("compiled artifacts incomplete: %+v", c)
	}
	if _, ok := c.Entries["SLP"]; !ok {
		t.Errorf("entries = %v", c.Entries)
	}
	for _, proto := range []string{"SLP", "SSDP", "HTTP"} {
		if c.Codecs[proto] == nil {
			t.Errorf("missing codec for %s", proto)
		}
	}
	// The compiled program is the merged automaton's memoized one: no
	// recompilation happened to build the cache entry.
	program, err := c.Merged.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if &program[0] != &c.Program[0] {
		t.Error("CompiledCase.Program is not the memoized program")
	}
}

// TestConcurrentMutation hammers the registry from parallel goroutines
// — loads, identity and effective replaces, unloads, compiled-cache
// reads and engine deployments — and relies on the race detector to
// catch unsynchronised access.
func TestConcurrentMutation(t *testing.T) {
	r, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.New()
	const workers = 4
	const iters = 50

	var wg sync.WaitGroup
	// Mutators: each owns a distinct case name, so loads/unloads
	// interleave without stepping on each other's expectations.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("race-case-%d", w)
			doc := altCaseDoc(name)
			for i := 0; i < iters; i++ {
				if _, err := r.ReplaceMerged(doc); err != nil {
					t.Error(err)
					return
				}
				if _, err := r.Compiled(name); err != nil {
					t.Error(err)
					return
				}
				if err := r.Unload(name); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers: list, resolve and compile the stable builtin cases.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, name := range r.MergedNames() {
					if strings.HasPrefix(name, "race-case") {
						continue // may be mid-unload
					}
					if _, err := r.Compiled(name); err != nil {
						t.Error(err)
						return
					}
				}
				_ = r.Protocols()
				_ = r.AutomatonNames()
				_ = r.Generation()
			}
		}()
	}
	// Deployers: build engines from the compiled cache in parallel
	// with the mutators.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node, err := sim.NewNode(fmt.Sprintf("10.0.9.%d", w+1))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iters/2; i++ {
				c, err := r.Compiled("slp-to-bonjour")
				if err != nil {
					t.Error(err)
					return
				}
				eng, err := engine.New(node, c.Merged, c.Codecs)
				if err != nil {
					t.Error(err)
					return
				}
				if err := eng.StartManaged(); err != nil {
					t.Error(err)
					return
				}
				if err := eng.Close(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestReplaceAutomatonFailedReresolve checks the consistency contract
// when a replaced model breaks its dependents: the replace reports the
// failing cases, bumps the generation, and the dependents keep serving
// their previous (still-valid) models until a corrected document
// converges the registry.
func TestReplaceAutomatonFailedReresolve(t *testing.T) {
	r, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	good := models.Automata["slp-server"]
	// Valid standalone, but its state names no longer match the δ
	// references of the slp-* cases.
	broken := strings.ReplaceAll(good, "s0", "t0")
	broken = strings.ReplaceAll(broken, "s1", "t1")

	gen := r.Generation()
	changed, err := r.ReplaceAutomaton("slp-server", broken)
	if !changed || err == nil {
		t.Fatalf("breaking replace: changed=%v err=%v", changed, err)
	}
	if !strings.Contains(err.Error(), "slp-to-upnp") || !strings.Contains(err.Error(), "slp-to-bonjour") {
		t.Errorf("error should name every failing case, got: %v", err)
	}
	if r.Generation() == gen {
		t.Error("failed re-resolve is still a mutation and must bump the generation")
	}
	// The dependent cases kept their previous models and still deploy.
	c, err := r.Compiled("slp-to-upnp")
	if err != nil {
		t.Fatalf("dependent case stopped compiling after failed replace: %v", err)
	}
	if _, ok := c.Entries["SLP"]; !ok {
		t.Errorf("stale-model entries = %v", c.Entries)
	}

	// Restoring the original document converges everything.
	changed, err = r.ReplaceAutomaton("slp-server", good)
	if !changed || err != nil {
		t.Fatalf("restore: changed=%v err=%v", changed, err)
	}
	for _, name := range r.MergedNames() {
		if _, err := r.Compiled(name); err != nil {
			t.Errorf("%s does not compile after restore: %v", name, err)
		}
	}
}
