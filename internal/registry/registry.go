// Package registry loads and indexes Starlink models — MDL
// specifications, k-colored automata and merged automata — and builds
// the per-protocol codecs an engine deployment needs. It is the
// runtime embodiment of the paper's model-reuse claim (§V-C): each
// protocol is modelled once and reused across every merged automaton
// that mentions it.
package registry

import (
	"fmt"
	"sort"

	"starlink/internal/automata"
	"starlink/internal/engine"
	"starlink/internal/mdl"
	"starlink/internal/merge"
	"starlink/internal/models"
	"starlink/internal/types"
)

// Registry indexes loaded models.
type Registry struct {
	types     *types.Registry
	typeFuncs *types.FuncRegistry
	specs     map[string]*mdl.Spec           // by protocol
	automata  map[string]*automata.Automaton // by model name (role-specific)
	merged    map[string]*merge.Merged       // by case name
}

// New returns an empty registry backed by the built-in type system.
func New() *Registry {
	return &Registry{
		types:     types.NewRegistry(),
		typeFuncs: types.NewFuncRegistry(),
		specs:     map[string]*mdl.Spec{},
		automata:  map[string]*automata.Automaton{},
		merged:    map[string]*merge.Merged{},
	}
}

// Builtin returns a registry preloaded with every model of the paper's
// case study: the four MDLs, eight role-specific colored automata and
// six merged automata.
func Builtin() (*Registry, error) {
	r := New()
	for name, doc := range models.MDLs {
		if err := r.LoadMDL(doc); err != nil {
			return nil, fmt.Errorf("registry: builtin MDL %s: %w", name, err)
		}
	}
	for name, doc := range models.Automata {
		if err := r.LoadAutomaton(name, doc); err != nil {
			return nil, fmt.Errorf("registry: builtin automaton %s: %w", name, err)
		}
	}
	for name, doc := range models.MergedAutomata {
		if err := r.LoadMerged(doc); err != nil {
			return nil, fmt.Errorf("registry: builtin merged %s: %w", name, err)
		}
	}
	return r, nil
}

// LoadMDL parses, validates and indexes an MDL document.
func (r *Registry) LoadMDL(doc string) error {
	spec, err := mdl.ParseXMLString(doc)
	if err != nil {
		return err
	}
	if _, dup := r.specs[spec.Protocol]; dup {
		return fmt.Errorf("registry: MDL for %q already loaded", spec.Protocol)
	}
	r.specs[spec.Protocol] = spec
	return nil
}

// LoadAutomaton parses, validates and indexes a colored automaton
// under a model name (e.g. "slp-server").
func (r *Registry) LoadAutomaton(name, doc string) error {
	a, err := automata.ParseXMLString(doc)
	if err != nil {
		return err
	}
	if _, dup := r.automata[name]; dup {
		return fmt.Errorf("registry: automaton %q already loaded", name)
	}
	if _, ok := r.specs[a.Protocol]; !ok {
		return fmt.Errorf("registry: automaton %q needs MDL for protocol %q (load MDLs first)", name, a.Protocol)
	}
	r.automata[name] = a
	return nil
}

// LoadMerged parses, validates and indexes a merged automaton,
// resolving its automaton references against the registry.
func (r *Registry) LoadMerged(doc string) error {
	m, err := merge.ParseXMLString(doc, merge.ResolverFunc(r.resolveAutomaton))
	if err != nil {
		return err
	}
	if _, dup := r.merged[m.Name]; dup {
		return fmt.Errorf("registry: merged automaton %q already loaded", m.Name)
	}
	specs := map[string]*mdl.Spec{}
	for _, a := range m.Automata {
		specs[a.Protocol] = r.specs[a.Protocol]
	}
	if err := m.CheckEquivalences(specs); err != nil {
		return err
	}
	r.merged[m.Name] = m
	return nil
}

func (r *Registry) resolveAutomaton(name string) (*automata.Automaton, error) {
	if a, ok := r.automata[name]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("registry: unknown automaton %q", name)
}

// Spec returns the MDL spec for a protocol.
func (r *Registry) Spec(protocol string) (*mdl.Spec, error) {
	s, ok := r.specs[protocol]
	if !ok {
		return nil, fmt.Errorf("registry: no MDL for protocol %q", protocol)
	}
	return s, nil
}

// Automaton returns the automaton loaded under a model name.
func (r *Registry) Automaton(name string) (*automata.Automaton, error) {
	return r.resolveAutomaton(name)
}

// Merged returns the merged automaton for a case name.
func (r *Registry) Merged(name string) (*merge.Merged, error) {
	m, ok := r.merged[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown merged automaton %q (have %v)", name, r.MergedNames())
	}
	return m, nil
}

// MergedNames lists the loaded case names, sorted.
func (r *Registry) MergedNames() []string {
	out := make([]string, 0, len(r.merged))
	for n := range r.merged {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AutomatonNames lists the loaded automaton model names, sorted.
func (r *Registry) AutomatonNames() []string {
	out := make([]string, 0, len(r.automata))
	for n := range r.automata {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Protocols lists the protocols with loaded MDLs, sorted.
func (r *Registry) Protocols() []string {
	out := make([]string, 0, len(r.specs))
	for n := range r.specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Codecs builds the engine codec set for a merged automaton: one
// MDL-specialised parser/composer (plus framer where available) per
// member protocol.
func (r *Registry) Codecs(m *merge.Merged) (map[string]*engine.Codec, error) {
	out := map[string]*engine.Codec{}
	for _, a := range m.Automata {
		spec, err := r.Spec(a.Protocol)
		if err != nil {
			return nil, err
		}
		c, err := engine.NewCodec(spec, r.types, r.typeFuncs)
		if err != nil {
			return nil, err
		}
		out[a.Protocol] = c
	}
	return out, nil
}

// Types exposes the shared marshaller registry (for plugging in
// additional MDL types at runtime, §IV-A).
func (r *Registry) Types() *types.Registry { return r.types }
