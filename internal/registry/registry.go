// Package registry loads and indexes Starlink models — MDL
// specifications, k-colored automata and merged automata — and builds
// the per-protocol codecs an engine deployment needs. It is the
// runtime embodiment of the paper's model-reuse claim (§V-C): each
// protocol is modelled once and reused across every merged automaton
// that mentions it.
//
// The registry is a concurrent, mutable model store: every method is
// safe for simultaneous use, Replace*/Unload mutate the loaded model
// set at runtime (the substrate of dynamic bridge provisioning), and a
// generation counter stamps each effective mutation so deployers can
// detect change. Compiled caches the per-case deployment artifacts —
// compiled program, entry-color index and codecs — so repeated
// deployments of an unchanged case do zero recompilation and zero
// codec construction.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"starlink/internal/automata"
	"starlink/internal/engine"
	"starlink/internal/mdl"
	"starlink/internal/merge"
	"starlink/internal/models"
	"starlink/internal/serrors"
	"starlink/internal/types"
)

// Registry indexes loaded models.
type Registry struct {
	types     *types.Registry
	typeFuncs *types.FuncRegistry

	mu       sync.RWMutex
	gen      uint64
	specs    map[string]*mdl.Spec           // by protocol
	automata map[string]*automata.Automaton // by model name (role-specific)
	merged   map[string]*merge.Merged       // by case name
	// Source documents, kept for identity checks (a Replace* with a
	// byte-identical document is a no-op) and for re-resolving merged
	// automata when an MDL or automaton they depend on changes.
	specDocs   map[string]string
	autoDocs   map[string]string
	mergedDocs map[string]string
	// compiled caches deployment artifacts per case; entries are
	// dropped when the case (or a model it depends on) changes.
	compiled map[string]*CompiledCase
}

// CompiledCase bundles everything a deployment of one case needs,
// built once per (case, generation): the merged automaton, its
// compiled step program, the entry-protocol color index and the
// MDL-specialised codecs. Codecs are stateless per call, so one
// CompiledCase is safely shared by every engine deployed from it.
type CompiledCase struct {
	// Case is the merged automaton name.
	Case string
	// Generation is the registry generation the artifacts were built
	// at. Two Compiled calls returning the same pointer (and hence
	// generation) are guaranteed to describe the same model state.
	Generation uint64
	Merged     *merge.Merged
	Program    []merge.Step
	// Entries maps each entry protocol (first compiled step for that
	// protocol is a receive) to the color it listens on.
	Entries map[string]automata.Color
	Codecs  map[string]*engine.Codec
}

// New returns an empty registry backed by the built-in type system.
func New() *Registry {
	return &Registry{
		types:      types.NewRegistry(),
		typeFuncs:  types.NewFuncRegistry(),
		specs:      map[string]*mdl.Spec{},
		automata:   map[string]*automata.Automaton{},
		merged:     map[string]*merge.Merged{},
		specDocs:   map[string]string{},
		autoDocs:   map[string]string{},
		mergedDocs: map[string]string{},
		compiled:   map[string]*CompiledCase{},
	}
}

// Builtin returns a registry preloaded with every model of the paper's
// case study: the four MDLs, eight role-specific colored automata and
// six merged automata.
func Builtin() (*Registry, error) {
	r := New()
	for name, doc := range models.MDLs {
		if err := r.LoadMDL(doc); err != nil {
			return nil, fmt.Errorf("registry: builtin MDL %s: %w", name, err)
		}
	}
	for name, doc := range models.Automata {
		if err := r.LoadAutomaton(name, doc); err != nil {
			return nil, fmt.Errorf("registry: builtin automaton %s: %w", name, err)
		}
	}
	for name, doc := range models.MergedAutomata {
		if err := r.LoadMerged(doc); err != nil {
			return nil, fmt.Errorf("registry: builtin merged %s: %w", name, err)
		}
	}
	return r, nil
}

// sameDoc reports whether two model documents are equivalent for
// replace purposes (whitespace at the edges does not count — on-disk
// fixtures often differ from embedded constants only by a trailing
// newline).
func sameDoc(a, b string) bool { return strings.TrimSpace(a) == strings.TrimSpace(b) }

// Generation returns the registry's mutation generation. It starts at
// zero and increases on every effective mutation (loads, non-identical
// replaces, unloads); identical-document replaces do not bump it.
func (r *Registry) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// LoadMDL parses, validates and indexes an MDL document. Loading a
// protocol that already has an MDL is an error; use ReplaceMDL for
// replace semantics.
func (r *Registry) LoadMDL(doc string) error {
	spec, err := mdl.ParseXMLString(doc)
	if err != nil {
		return serrors.Mark(err, serrors.ErrModelInvalid)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[spec.Protocol]; dup {
		return fmt.Errorf("registry: MDL for %q already loaded", spec.Protocol)
	}
	r.specs[spec.Protocol] = spec
	r.specDocs[spec.Protocol] = doc
	r.gen++
	return nil
}

// ReplaceMDL loads an MDL document, replacing any MDL already loaded
// for the protocol. Replacing with an identical document is a no-op.
// On an effective replace, every loaded merged automaton is re-resolved
// from its source document so no case keeps referencing the old spec;
// changed reports whether anything was mutated.
func (r *Registry) ReplaceMDL(doc string) (changed bool, err error) {
	spec, err := mdl.ParseXMLString(doc)
	if err != nil {
		return false, serrors.Mark(err, serrors.ErrModelInvalid)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old, existed := r.specDocs[spec.Protocol]
	if existed && sameDoc(old, doc) {
		return false, nil
	}
	r.specs[spec.Protocol] = spec
	r.specDocs[spec.Protocol] = doc
	// A brand-new protocol cannot be referenced by any loaded case, so
	// only an actual replacement forces dependents to re-resolve. The
	// generation bumps even when some dependent fails to re-resolve:
	// the mutation happened, and deployers must pick up the consistent
	// remainder (the failing cases keep their previous models).
	if existed {
		err = r.reresolveMergedLocked()
	}
	r.gen++
	return true, err
}

// LoadAutomaton parses, validates and indexes a colored automaton
// under a model name (e.g. "slp-server"). Loading a name twice is an
// error; use ReplaceAutomaton for replace semantics.
func (r *Registry) LoadAutomaton(name, doc string) error {
	a, err := automata.ParseXMLString(doc)
	if err != nil {
		return serrors.Mark(err, serrors.ErrModelInvalid)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.automata[name]; dup {
		return fmt.Errorf("registry: automaton %q already loaded", name)
	}
	if _, ok := r.specs[a.Protocol]; !ok {
		return fmt.Errorf("registry: automaton %q needs MDL for protocol %q (load MDLs first)", name, a.Protocol)
	}
	r.automata[name] = a
	r.autoDocs[name] = doc
	r.gen++
	return nil
}

// ReplaceAutomaton loads a colored automaton under a model name,
// replacing any automaton already loaded under it. Replacing with an
// identical document is a no-op. On an effective replace, every loaded
// merged automaton is re-resolved from source so no case keeps
// executing the old automaton.
func (r *Registry) ReplaceAutomaton(name, doc string) (changed bool, err error) {
	a, err := automata.ParseXMLString(doc)
	if err != nil {
		return false, serrors.Mark(err, serrors.ErrModelInvalid)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old, existed := r.autoDocs[name]
	if existed && sameDoc(old, doc) {
		return false, nil
	}
	if _, ok := r.specs[a.Protocol]; !ok {
		return false, fmt.Errorf("registry: automaton %q needs MDL for protocol %q (load MDLs first)", name, a.Protocol)
	}
	r.automata[name] = a
	r.autoDocs[name] = doc
	// A brand-new model name cannot be referenced by any loaded case,
	// so only an actual replacement forces dependents to re-resolve.
	// See ReplaceMDL for why the generation bumps even on error.
	if existed {
		err = r.reresolveMergedLocked()
	}
	r.gen++
	return true, err
}

// LoadMerged parses, validates and indexes a merged automaton,
// resolving its automaton references against the registry. Loading a
// case name twice is an error; use ReplaceMerged for replace semantics.
func (r *Registry) LoadMerged(doc string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, err := r.parseMergedLocked(doc)
	if err != nil {
		return err
	}
	if _, dup := r.merged[m.Name]; dup {
		return fmt.Errorf("registry: merged automaton %q already loaded", m.Name)
	}
	r.merged[m.Name] = m
	r.mergedDocs[m.Name] = doc
	r.gen++
	return nil
}

// ReplaceMerged loads a merged automaton document, replacing any case
// already loaded under its name. Replacing with an identical document
// is a no-op; an effective replace drops the case's compiled cache
// entry, so the next Compiled call rebuilds it at a new generation.
func (r *Registry) ReplaceMerged(doc string) (changed bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, err := r.parseMergedLocked(doc)
	if err != nil {
		return false, err
	}
	if old, ok := r.mergedDocs[m.Name]; ok && sameDoc(old, doc) {
		return false, nil
	}
	r.merged[m.Name] = m
	r.mergedDocs[m.Name] = doc
	delete(r.compiled, m.Name)
	r.gen++
	return true, nil
}

// Unload removes a merged automaton (and its compiled cache entry)
// from the registry. Engines already deployed from it keep running;
// unloading only prevents new deployments.
func (r *Registry) Unload(caseName string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.merged[caseName]; !ok {
		return serrors.Mark(fmt.Errorf("registry: unknown merged automaton %q", caseName), serrors.ErrUnknownCase)
	}
	delete(r.merged, caseName)
	delete(r.mergedDocs, caseName)
	delete(r.compiled, caseName)
	r.gen++
	return nil
}

// parseMergedLocked parses and fully validates a merged automaton
// document against the registry's current models. Caller holds mu.
func (r *Registry) parseMergedLocked(doc string) (*merge.Merged, error) {
	m, err := merge.ParseXMLString(doc, merge.ResolverFunc(func(name string) (*automata.Automaton, error) {
		if a, ok := r.automata[name]; ok {
			return a, nil
		}
		return nil, fmt.Errorf("registry: unknown automaton %q", name)
	}))
	if err != nil {
		return nil, serrors.Mark(err, serrors.ErrModelInvalid)
	}
	specs := map[string]*mdl.Spec{}
	for _, a := range m.Automata {
		specs[a.Protocol] = r.specs[a.Protocol]
	}
	if err := m.CheckEquivalences(specs); err != nil {
		return nil, serrors.Mark(err, serrors.ErrModelInvalid)
	}
	return m, nil
}

// reresolveMergedLocked re-parses every loaded merged automaton from
// its source document, picking up replaced MDLs/automata, and drops
// the whole compiled cache. Caller holds mu. Every case is attempted —
// not just up to the first failure, which would leave the survivors
// depending on map iteration order — and a case that no longer
// resolves keeps its previous in-memory model; the aggregated error
// names each such case. The compiled cache is dropped even on error so
// no deployment keeps artifacts built from the pre-replace models.
func (r *Registry) reresolveMergedLocked() error {
	var failed []string
	for name, doc := range r.mergedDocs {
		m, err := r.parseMergedLocked(doc)
		if err != nil {
			failed = append(failed, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		r.merged[name] = m
	}
	r.compiled = map[string]*CompiledCase{}
	if len(failed) > 0 {
		sort.Strings(failed)
		return fmt.Errorf("registry: case(s) kept their previous model: %s", strings.Join(failed, "; "))
	}
	return nil
}

// Spec returns the MDL spec for a protocol.
func (r *Registry) Spec(protocol string) (*mdl.Spec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[protocol]
	if !ok {
		return nil, fmt.Errorf("registry: no MDL for protocol %q", protocol)
	}
	return s, nil
}

// Automaton returns the automaton loaded under a model name.
func (r *Registry) Automaton(name string) (*automata.Automaton, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if a, ok := r.automata[name]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("registry: unknown automaton %q", name)
}

// Merged returns the merged automaton for a case name.
func (r *Registry) Merged(name string) (*merge.Merged, error) {
	r.mu.RLock()
	m, ok := r.merged[name]
	r.mu.RUnlock()
	if !ok {
		return nil, serrors.Mark(
			fmt.Errorf("registry: unknown merged automaton %q (have %v)", name, r.MergedNames()),
			serrors.ErrUnknownCase)
	}
	return m, nil
}

// MergedNames lists the loaded case names, sorted.
func (r *Registry) MergedNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.mergedNamesLocked()
}

func (r *Registry) mergedNamesLocked() []string {
	out := make([]string, 0, len(r.merged))
	for n := range r.merged {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AutomatonNames lists the loaded automaton model names, sorted.
func (r *Registry) AutomatonNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.automata))
	for n := range r.automata {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Protocols lists the protocols with loaded MDLs, sorted.
func (r *Registry) Protocols() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.specs))
	for n := range r.specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Codecs builds the engine codec set for a merged automaton: one
// MDL-specialised parser/composer (plus framer where available) per
// member protocol. Deployment paths should prefer Compiled, which
// caches the codec set per case.
func (r *Registry) Codecs(m *merge.Merged) (map[string]*engine.Codec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.codecsLocked(m)
}

func (r *Registry) codecsLocked(m *merge.Merged) (map[string]*engine.Codec, error) {
	out := map[string]*engine.Codec{}
	for _, a := range m.Automata {
		spec, ok := r.specs[a.Protocol]
		if !ok {
			return nil, fmt.Errorf("registry: no MDL for protocol %q", a.Protocol)
		}
		c, err := engine.NewCodec(spec, r.types, r.typeFuncs)
		if err != nil {
			return nil, err
		}
		out[a.Protocol] = c
	}
	return out, nil
}

// Compiled returns the cached deployment artifacts for a case,
// building them on first use: compiled program, entry-color index and
// codec set. Repeated calls for an unchanged case return the same
// pointer — zero recompilation, zero codec construction. The cache
// entry is invalidated when the case (or an MDL/automaton it depends
// on) is replaced or unloaded.
func (r *Registry) Compiled(name string) (*CompiledCase, error) {
	r.mu.RLock()
	c, ok := r.compiled[name]
	r.mu.RUnlock()
	if ok {
		return c, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.compiled[name]; ok {
		return c, nil
	}
	m, ok := r.merged[name]
	if !ok {
		return nil, serrors.Mark(
			fmt.Errorf("registry: unknown merged automaton %q (have %v)", name, r.mergedNamesLocked()),
			serrors.ErrUnknownCase)
	}
	program, err := m.Compile()
	if err != nil {
		return nil, serrors.Mark(err, serrors.ErrModelInvalid)
	}
	entries, err := m.EntryProtocols()
	if err != nil {
		return nil, serrors.Mark(err, serrors.ErrModelInvalid)
	}
	codecs, err := r.codecsLocked(m)
	if err != nil {
		return nil, err
	}
	c = &CompiledCase{
		Case:       name,
		Generation: r.gen,
		Merged:     m,
		Program:    program,
		Entries:    entries,
		Codecs:     codecs,
	}
	r.compiled[name] = c
	return c, nil
}

// Types exposes the shared marshaller registry (for plugging in
// additional MDL types at runtime, §IV-A).
func (r *Registry) Types() *types.Registry { return r.types }
