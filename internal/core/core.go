// Package core is the Starlink framework facade — the paper's primary
// contribution assembled into a deployable system. A Framework owns a
// model registry and a network runtime; DeployBridge instantiates the
// generic Automata Engine with a merged automaton and its codecs on a
// bridge host, after which legacy clients and services interoperate
// transparently (paper Fig. 6).
//
// The package is intentionally thin: everything protocol-specific
// lives in loadable models (internal/models), and everything generic
// in the engine/parser/composer interpreters — which is the paper's
// point.
package core

import (
	"context"
	"fmt"
	"sync"

	"starlink/internal/engine"
	"starlink/internal/netapi"
	"starlink/internal/provision"
	"starlink/internal/registry"
)

// Framework is a Starlink deployment context.
type Framework struct {
	reg *registry.Registry
	rt  netapi.Runtime
}

// New creates a framework on the runtime with the built-in case-study
// models loaded (SLP, SSDP, HTTP, mDNS and the six merged automata).
func New(rt netapi.Runtime) (*Framework, error) {
	reg, err := registry.Builtin()
	if err != nil {
		return nil, err
	}
	return &Framework{reg: reg, rt: rt}, nil
}

// NewEmpty creates a framework with an empty registry; callers load
// their own models (the runtime-extensibility path of §IV-A).
func NewEmpty(rt netapi.Runtime) *Framework {
	return &Framework{reg: registry.New(), rt: rt}
}

// NewWithRegistry creates a framework on the runtime sharing an
// existing model registry. The registry is runtime-independent (models
// and codecs hold no sockets), so one registry — with its compiled-case
// cache warm — can back any number of frameworks: daemons serving
// several runtimes, tests, and steady-state benchmarks all skip
// re-parsing and re-validating the model corpus.
func NewWithRegistry(rt netapi.Runtime, reg *registry.Registry) *Framework {
	return &Framework{reg: reg, rt: rt}
}

// Registry exposes the model registry for loading additional MDLs,
// automata and merged automata at runtime.
func (f *Framework) Registry() *registry.Registry { return f.reg }

// Runtime returns the underlying network runtime.
func (f *Framework) Runtime() netapi.Runtime { return f.rt }

// Bridge is a deployed interoperability connector.
type Bridge struct {
	// Case is the merged automaton name, e.g. "slp-to-upnp".
	Case string
	// Engine is the running automata engine (stats, program).
	Engine *engine.Engine
	// Node is the bridge host. The bridge owns it: Close and Shutdown
	// release it along with the engine, as does cancellation of the
	// deploy context.
	Node netapi.Node

	// done is closed when the bridge has been torn down by any path;
	// the deploy-context watcher exits on it.
	done     chan struct{}
	doneOnce sync.Once
}

// signalDone marks the bridge torn down (idempotent).
func (b *Bridge) signalDone() {
	b.doneOnce.Do(func() {
		if b.done != nil {
			close(b.done)
		}
	})
}

// Done is closed once the bridge has been torn down by any path —
// Close, Shutdown, or cancellation of its deploy context.
func (b *Bridge) Done() <-chan struct{} { return b.done }

// Close undeploys the bridge immediately, tearing down in-flight
// sessions and releasing the bridge host.
func (b *Bridge) Close() error {
	err := b.Engine.Close()
	if cerr := b.Node.Close(); err == nil {
		err = cerr
	}
	b.signalDone()
	return err
}

// Shutdown drains the bridge gracefully — no new sessions, live ones
// run to completion or until ctx expires — then releases the bridge
// host. See engine.Shutdown for the drain contract.
func (b *Bridge) Shutdown(ctx context.Context) error {
	err := b.Engine.Shutdown(ctx)
	if cerr := b.Node.Close(); err == nil {
		err = cerr
	}
	b.signalDone()
	return err
}

// DeployBridge creates a bridge host with the given IP, instantiates
// the named merged automaton on it and starts listening. The bridge is
// transparent: neither legacy side needs to know it exists.
//
// ctx governs both the deployment and the bridge's lifetime (like
// exec.CommandContext): a ctx already cancelled aborts the deploy, and
// cancelling it later closes the bridge, tearing down in-flight
// sessions through their per-session contexts. Every failure path
// releases the freshly created bridge host, so an aborted deploy never
// leaks its node or entry ports.
func (f *Framework) DeployBridge(ctx context.Context, hostIP, caseName string, opts ...engine.Option) (*Bridge, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: deploy %s: %w", caseName, err)
	}
	// The registry's compiled-case cache makes repeated deployments of
	// an unchanged case free of recompilation and codec construction.
	c, err := f.reg.Compiled(caseName)
	if err != nil {
		return nil, err
	}
	node, err := f.rt.NewNode(hostIP)
	if err != nil {
		return nil, fmt.Errorf("core: bridge host: %w", err)
	}
	opts = append(opts, engine.WithContext(ctx))
	eng, err := engine.New(node, c.Merged, c.Codecs, opts...)
	if err != nil {
		_ = node.Close()
		return nil, err
	}
	if err := eng.Start(); err != nil {
		// Close releases the engine's derived context registration on
		// the caller's ctx along with any listeners bound before the
		// failure.
		_ = eng.Close()
		_ = node.Close()
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		_ = eng.Close()
		_ = node.Close()
		return nil, fmt.Errorf("core: deploy %s: %w", caseName, err)
	}
	b := &Bridge{Case: caseName, Engine: eng, Node: node, done: make(chan struct{})}
	if ctx.Done() != nil {
		// The bridge owns its node: context cancellation must release
		// the host too, not just the engine (whose own watcher only
		// closes the engine). The watcher exits when the bridge closes
		// by any path.
		go func() {
			select {
			case <-ctx.Done():
				_ = b.Close()
			case <-b.done:
			}
		}()
	}
	return b, nil
}

// DeployDispatcher creates a bridge host with the given IP and hosts
// the named cases on it through one provisioning dispatcher — every
// loaded case when cases is empty. The dispatcher owns the shared
// entry listeners and classifies inbound payloads to the right case;
// call Sync on it after mutating the registry (or drive it from a
// provision.Watcher) to pick up model changes with zero restart.
//
// ctx follows the DeployBridge contract: it aborts an in-progress
// deploy and, once deployed, cancelling it closes the dispatcher. The
// dispatcher owns the created node and releases it on Close/Shutdown
// and on every failed-deploy path.
func (f *Framework) DeployDispatcher(ctx context.Context, hostIP string, cases []string, opts ...provision.Option) (*provision.Dispatcher, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: deploy dispatcher: %w", err)
	}
	node, err := f.rt.NewNode(hostIP)
	if err != nil {
		return nil, fmt.Errorf("core: bridge host: %w", err)
	}
	if len(cases) > 0 {
		opts = append(opts, provision.WithCases(cases...))
	}
	opts = append(opts, provision.WithOwnedNode(), provision.WithContext(ctx))
	d := provision.NewDispatcher(f.reg, node, opts...)
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		_ = d.Close()
		return nil, fmt.Errorf("core: deploy dispatcher: %w", err)
	}
	return d, nil
}
