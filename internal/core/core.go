// Package core is the Starlink framework facade — the paper's primary
// contribution assembled into a deployable system. A Framework owns a
// model registry and a network runtime; DeployBridge instantiates the
// generic Automata Engine with a merged automaton and its codecs on a
// bridge host, after which legacy clients and services interoperate
// transparently (paper Fig. 6).
//
// The package is intentionally thin: everything protocol-specific
// lives in loadable models (internal/models), and everything generic
// in the engine/parser/composer interpreters — which is the paper's
// point.
package core

import (
	"fmt"

	"starlink/internal/engine"
	"starlink/internal/netapi"
	"starlink/internal/provision"
	"starlink/internal/registry"
)

// Framework is a Starlink deployment context.
type Framework struct {
	reg *registry.Registry
	rt  netapi.Runtime
}

// New creates a framework on the runtime with the built-in case-study
// models loaded (SLP, SSDP, HTTP, mDNS and the six merged automata).
func New(rt netapi.Runtime) (*Framework, error) {
	reg, err := registry.Builtin()
	if err != nil {
		return nil, err
	}
	return &Framework{reg: reg, rt: rt}, nil
}

// NewEmpty creates a framework with an empty registry; callers load
// their own models (the runtime-extensibility path of §IV-A).
func NewEmpty(rt netapi.Runtime) *Framework {
	return &Framework{reg: registry.New(), rt: rt}
}

// NewWithRegistry creates a framework on the runtime sharing an
// existing model registry. The registry is runtime-independent (models
// and codecs hold no sockets), so one registry — with its compiled-case
// cache warm — can back any number of frameworks: daemons serving
// several runtimes, tests, and steady-state benchmarks all skip
// re-parsing and re-validating the model corpus.
func NewWithRegistry(rt netapi.Runtime, reg *registry.Registry) *Framework {
	return &Framework{reg: reg, rt: rt}
}

// Registry exposes the model registry for loading additional MDLs,
// automata and merged automata at runtime.
func (f *Framework) Registry() *registry.Registry { return f.reg }

// Runtime returns the underlying network runtime.
func (f *Framework) Runtime() netapi.Runtime { return f.rt }

// Bridge is a deployed interoperability connector.
type Bridge struct {
	// Case is the merged automaton name, e.g. "slp-to-upnp".
	Case string
	// Engine is the running automata engine (stats, program).
	Engine *engine.Engine
	// Node is the bridge host.
	Node netapi.Node
}

// Close undeploys the bridge.
func (b *Bridge) Close() error { return b.Engine.Close() }

// DeployBridge creates a bridge host with the given IP, instantiates
// the named merged automaton on it and starts listening. The bridge is
// transparent: neither legacy side needs to know it exists.
func (f *Framework) DeployBridge(hostIP, caseName string, opts ...engine.Option) (*Bridge, error) {
	// The registry's compiled-case cache makes repeated deployments of
	// an unchanged case free of recompilation and codec construction.
	c, err := f.reg.Compiled(caseName)
	if err != nil {
		return nil, err
	}
	node, err := f.rt.NewNode(hostIP)
	if err != nil {
		return nil, fmt.Errorf("core: bridge host: %w", err)
	}
	eng, err := engine.New(node, c.Merged, c.Codecs, opts...)
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	return &Bridge{Case: caseName, Engine: eng, Node: node}, nil
}

// DeployDispatcher creates a bridge host with the given IP and hosts
// the named cases on it through one provisioning dispatcher — every
// loaded case when cases is empty. The dispatcher owns the shared
// entry listeners and classifies inbound payloads to the right case;
// call Sync on it after mutating the registry (or drive it from a
// provision.Watcher) to pick up model changes with zero restart.
func (f *Framework) DeployDispatcher(hostIP string, cases []string, opts ...provision.Option) (*provision.Dispatcher, error) {
	node, err := f.rt.NewNode(hostIP)
	if err != nil {
		return nil, fmt.Errorf("core: bridge host: %w", err)
	}
	if len(cases) > 0 {
		opts = append(opts, provision.WithCases(cases...))
	}
	d := provision.NewDispatcher(f.reg, node, opts...)
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return nil, err
	}
	return d, nil
}
