package core_test

import (
	"testing"
	"time"

	"starlink/internal/core"
	"starlink/internal/engine"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/realnet"
	"starlink/internal/simnet"
)

func TestFrameworkDeployAllCases(t *testing.T) {
	sim := simnet.New()
	fw, err := core.New(sim)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range fw.Registry().MergedNames() {
		// Distinct host per bridge to avoid group-port collisions.
		b, err := fw.DeployBridge("10.0.9."+string(rune('1'+i)), name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Case != name || b.Engine == nil || b.Node == nil {
			t.Fatalf("%s: bridge = %+v", name, b)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
	}
}

func TestFrameworkUnknownCase(t *testing.T) {
	sim := simnet.New()
	fw, err := core.New(sim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.DeployBridge("10.0.0.5", "corba-to-soap"); err == nil {
		t.Fatal("unknown case should fail")
	}
}

func TestNewEmptyHasNoModels(t *testing.T) {
	fw := core.NewEmpty(simnet.New())
	if got := fw.Registry().MergedNames(); len(got) != 0 {
		t.Fatalf("merged = %v", got)
	}
	if fw.Runtime() == nil {
		t.Fatal("runtime missing")
	}
}

// TestBridgeOverRealSockets runs the paper's SLP→Bonjour case over
// real loopback UDP — the deployment mode of the starlinkd daemon.
func TestBridgeOverRealSockets(t *testing.T) {
	rt := realnet.New()
	fw, err := core.New(rt)
	if err != nil {
		t.Fatal(err)
	}
	var stats []engine.SessionStats
	bridge, err := fw.DeployBridge("127.0.0.1", "slp-to-bonjour",
		engine.WithObserver(func(s engine.SessionStats) { stats = append(stats, s) }))
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	svcNode, _ := rt.NewNode("svc")
	responder, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://127.0.0.1:515")
	if err != nil {
		t.Fatal(err)
	}
	defer responder.Close()

	cliNode, _ := rt.NewNode("cli")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(300*time.Millisecond))
	var res slp.LookupResult
	done := false
	ua.Lookup("service:printer", func(r slp.LookupResult) { res = r; done = true })
	if err := rt.RunUntil(func() bool { return done }, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.URLs) != 1 || res.URLs[0] != "service:printer://127.0.0.1:515" {
		t.Fatalf("urls = %v", res.URLs)
	}
	if len(stats) != 1 || stats[0].Err != nil {
		t.Fatalf("stats = %+v", stats)
	}
}
