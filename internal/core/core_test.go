package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"starlink/internal/core"
	"starlink/internal/engine"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/realnet"
	"starlink/internal/simnet"
	"starlink/internal/translation"
)

func TestFrameworkDeployAllCases(t *testing.T) {
	sim := simnet.New()
	fw, err := core.New(sim)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range fw.Registry().MergedNames() {
		// Distinct host per bridge to avoid group-port collisions.
		b, err := fw.DeployBridge(context.Background(), "10.0.9."+string(rune('1'+i)), name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Case != name || b.Engine == nil || b.Node == nil {
			t.Fatalf("%s: bridge = %+v", name, b)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
	}
}

func TestFrameworkUnknownCase(t *testing.T) {
	sim := simnet.New()
	fw, err := core.New(sim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.DeployBridge(context.Background(), "10.0.0.5", "corba-to-soap"); err == nil {
		t.Fatal("unknown case should fail")
	}
}

// TestDeployBridgeFailureReleasesNode is the regression test for the
// node leak on failed deploys: when engine construction fails after
// the bridge host was created, the host must be closed — under simnet,
// that frees its IP for reuse. The failure is forced with an empty
// translation-function registry: the builtin cases' logic references
// T-functions, so Logic.Validate rejects it after the node exists.
func TestDeployBridgeFailureReleasesNode(t *testing.T) {
	sim := simnet.New()
	fw, err := core.New(sim)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-bonjour",
		engine.WithTranslationFuncs(&translation.FuncRegistry{}))
	if err == nil {
		t.Fatal("deploy with an empty T-function registry should fail")
	}
	// The failed deploy must not have leaked the node: its IP is free.
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatalf("node leaked by failed deploy: %v", err)
	}
	_ = node.Close()
}

// TestDeployBridgeCancelledContext verifies a cancelled context aborts
// the deploy before any resource is created.
func TestDeployBridgeCancelledContext(t *testing.T) {
	sim := simnet.New()
	fw, err := core.New(sim)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.DeployBridge(ctx, "10.0.0.5", "slp-to-bonjour"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatalf("node leaked by cancelled deploy: %v", err)
	}
	_ = node.Close()
}

// TestBridgeCloseReleasesNode verifies the owning side of the same
// contract: closing a healthy bridge releases its host.
func TestBridgeCloseReleasesNode(t *testing.T) {
	sim := simnet.New()
	fw, err := core.New(sim)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-bonjour")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatalf("node not released by Close: %v", err)
	}
	_ = node.Close()
}

// TestContextCancelClosesBridge verifies the lifetime half of the
// DeployBridge context contract: cancelling the deploy context closes
// the engine.
func TestContextCancelClosesBridge(t *testing.T) {
	sim := simnet.New()
	fw, err := core.New(sim)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b, err := fw.DeployBridge(ctx, "10.0.0.5", "slp-to-bonjour")
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for b.Engine.State() != engine.StateClosed {
		if time.Now().After(deadline) {
			t.Fatalf("engine state = %v after context cancel", b.Engine.State())
		}
		time.Sleep(time.Millisecond)
	}
	// Cancellation releases the node too (the bridge owns it): once the
	// watcher finishes, the IP is free again.
	select {
	case <-b.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("bridge not torn down after context cancel")
	}
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatalf("node leaked after context cancel: %v", err)
	}
	_ = node.Close()
}

func TestNewEmptyHasNoModels(t *testing.T) {
	fw := core.NewEmpty(simnet.New())
	if got := fw.Registry().MergedNames(); len(got) != 0 {
		t.Fatalf("merged = %v", got)
	}
	if fw.Runtime() == nil {
		t.Fatal("runtime missing")
	}
}

// TestBridgeOverRealSockets runs the paper's SLP→Bonjour case over
// real loopback UDP — the deployment mode of the starlinkd daemon.
func TestBridgeOverRealSockets(t *testing.T) {
	rt := realnet.New()
	fw, err := core.New(rt)
	if err != nil {
		t.Fatal(err)
	}
	var stats []engine.SessionStats
	bridge, err := fw.DeployBridge(context.Background(), "127.0.0.1", "slp-to-bonjour",
		engine.WithObserver(func(s engine.SessionStats) { stats = append(stats, s) }))
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	svcNode, _ := rt.NewNode("svc")
	responder, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://127.0.0.1:515")
	if err != nil {
		t.Fatal(err)
	}
	defer responder.Close()

	cliNode, _ := rt.NewNode("cli")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(300*time.Millisecond))
	var res slp.LookupResult
	done := false
	ua.Lookup("service:printer", func(r slp.LookupResult) { res = r; done = true })
	if err := rt.RunUntil(func() bool { return done }, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.URLs) != 1 || res.URLs[0] != "service:printer://127.0.0.1:515" {
		t.Fatalf("urls = %v", res.URLs)
	}
	if len(stats) != 1 || stats[0].Err != nil {
		t.Fatalf("stats = %+v", stats)
	}
}
