package netapi

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FaultRule describes one fault injected at a runtime's delivery
// layer: which endpoint pairs it applies to, when it is active, and
// what it does to matching traffic. Rules are pure data — the runtime
// hosting the plan (see FaultInjector) interprets them, drawing every
// probabilistic decision from its own seeded fault RNG so that a given
// seed plus a given plan yields a single execution.
//
// Endpoint patterns are "ip", "ip:port", "*" (any), or a host prefix
// such as "10.0.1.*"; an empty pattern matches anything. A datagram
// matches a rule when the sender socket matches From AND the receiving
// socket matches To — rules are directional, so a partition of A→B
// says nothing about B→A.
//
// Start and End bound the rule's active window as offsets from the
// instant the plan was installed; End zero means the rule never heals.
// All matching rules apply, in plan order: losses compound, delays add.
type FaultRule struct {
	// Name labels the rule in plans and artifacts; it has no semantic
	// effect.
	Name string
	// From and To are endpoint patterns (see above).
	From, To string
	// Proto restricts the rule to "udp" or "stream"; empty means both.
	Proto string
	// Start and End delimit the active window relative to plan install.
	// End zero leaves the rule active forever (a partition that never
	// heals).
	Start, End time.Duration
	// Loss is the probability (0..1) a matching datagram is dropped.
	// Streams are never lossy (TCP semantics) — Loss is ignored for
	// stream chunks.
	Loss float64
	// Delay and DelayJitter add a fixed plus uniformly-jittered extra
	// one-way delay to matching deliveries (datagrams and stream
	// chunks).
	Delay, DelayJitter time.Duration
	// Duplicate is the probability (0..1) a matching datagram is
	// delivered twice; the copy arrives DuplicateDelay after the
	// original's schedule. Ignored for streams.
	Duplicate      float64
	DuplicateDelay time.Duration
	// Reorder is the probability (0..1) a matching datagram is held an
	// extra ReorderDelay, letting later traffic overtake it. Ignored
	// for streams (TCP delivers in order).
	Reorder      float64
	ReorderDelay time.Duration
	// Partition drops every matching datagram and stalls matching
	// stream traffic until the rule's End (chunks in flight deliver at
	// heal time; a partition with no End kills stream traffic too).
	Partition bool
}

// ActiveAt reports whether the rule's window covers elapsed time since
// plan install.
func (r *FaultRule) ActiveAt(elapsed time.Duration) bool {
	return elapsed >= r.Start && (r.End == 0 || elapsed < r.End)
}

// Matches reports whether the rule applies to a proto ("udp" or
// "stream") delivery from→to at elapsed since plan install.
func (r *FaultRule) Matches(proto string, from, to Addr, elapsed time.Duration) bool {
	if r.Proto != "" && r.Proto != proto {
		return false
	}
	if !r.ActiveAt(elapsed) {
		return false
	}
	return matchEndpoint(r.From, from) && matchEndpoint(r.To, to)
}

// matchEndpoint matches an endpoint pattern against an address.
func matchEndpoint(pat string, a Addr) bool {
	if pat == "" || pat == "*" {
		return true
	}
	host := pat
	if i := strings.LastIndexByte(pat, ':'); i >= 0 {
		host = pat[:i]
		port, err := strconv.Atoi(pat[i+1:])
		if err != nil || port != a.Port {
			return false
		}
	}
	if host == "*" {
		return true
	}
	if strings.HasSuffix(host, ".*") {
		return strings.HasPrefix(a.IP, host[:len(host)-1])
	}
	return host == a.IP
}

// FaultPlan is an ordered set of fault rules to install into a runtime
// that supports fault injection. The zero value (or a nil plan)
// injects nothing.
type FaultPlan struct {
	Rules []FaultRule
}

// Empty reports whether the plan injects nothing.
func (p *FaultPlan) Empty() bool { return p == nil || len(p.Rules) == 0 }

// FaultInjector is implemented by runtimes whose delivery layer can
// host a fault plan (the simulator). Installing a plan resets the
// plan's epoch to the runtime's current instant; installing nil
// removes all faults.
type FaultInjector interface {
	InstallFaults(plan *FaultPlan)
}

// ---------------------------------------------------------------------
// Table format
//
// One rule per line, whitespace-separated key=value fields after the
// "fault" keyword; boolean partition is a bare token. This is the form
// embedded in DST scenarios and failure artifacts:
//
//	fault name=cut from=10.0.0.1 to=10.0.0.9:427 proto=udp start=0s end=2s partition
//	fault from=* to=10.0.0.5 loss=0.3 delay=1ms jitter=500us dup=0.2 dupdelay=1ms reorder=0.1 reorderdelay=2ms
// ---------------------------------------------------------------------

// FormatFaultRule renders a rule in the table form; ParseFaultRule
// round-trips it.
func FormatFaultRule(r FaultRule) string {
	var b strings.Builder
	b.WriteString("fault")
	add := func(k, v string) { b.WriteByte(' '); b.WriteString(k); b.WriteByte('='); b.WriteString(v) }
	if r.Name != "" {
		add("name", r.Name)
	}
	if r.From != "" {
		add("from", r.From)
	}
	if r.To != "" {
		add("to", r.To)
	}
	if r.Proto != "" {
		add("proto", r.Proto)
	}
	if r.Start != 0 {
		add("start", r.Start.String())
	}
	if r.End != 0 {
		add("end", r.End.String())
	}
	if r.Loss != 0 {
		add("loss", strconv.FormatFloat(r.Loss, 'g', -1, 64))
	}
	if r.Delay != 0 {
		add("delay", r.Delay.String())
	}
	if r.DelayJitter != 0 {
		add("jitter", r.DelayJitter.String())
	}
	if r.Duplicate != 0 {
		add("dup", strconv.FormatFloat(r.Duplicate, 'g', -1, 64))
	}
	if r.DuplicateDelay != 0 {
		add("dupdelay", r.DuplicateDelay.String())
	}
	if r.Reorder != 0 {
		add("reorder", strconv.FormatFloat(r.Reorder, 'g', -1, 64))
	}
	if r.ReorderDelay != 0 {
		add("reorderdelay", r.ReorderDelay.String())
	}
	if r.Partition {
		b.WriteString(" partition")
	}
	return b.String()
}

// ParseFaultRule parses one table-form rule line.
func ParseFaultRule(line string) (FaultRule, error) {
	var r FaultRule
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != "fault" {
		return r, fmt.Errorf("netapi: fault rule must start with \"fault\": %q", line)
	}
	for _, f := range fields[1:] {
		if f == "partition" {
			r.Partition = true
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return r, fmt.Errorf("netapi: fault rule field %q is not key=value", f)
		}
		var err error
		switch k {
		case "name":
			r.Name = v
		case "from":
			r.From = v
		case "to":
			r.To = v
		case "proto":
			if v != "udp" && v != "stream" {
				return r, fmt.Errorf("netapi: fault rule proto %q (want udp or stream)", v)
			}
			r.Proto = v
		case "start":
			r.Start, err = time.ParseDuration(v)
		case "end":
			r.End, err = time.ParseDuration(v)
		case "loss":
			r.Loss, err = parseProb(v)
		case "delay":
			r.Delay, err = time.ParseDuration(v)
		case "jitter":
			r.DelayJitter, err = time.ParseDuration(v)
		case "dup":
			r.Duplicate, err = parseProb(v)
		case "dupdelay":
			r.DuplicateDelay, err = time.ParseDuration(v)
		case "reorder":
			r.Reorder, err = parseProb(v)
		case "reorderdelay":
			r.ReorderDelay, err = time.ParseDuration(v)
		default:
			return r, fmt.Errorf("netapi: unknown fault rule field %q", k)
		}
		if err != nil {
			return r, fmt.Errorf("netapi: fault rule field %s=%s: %w", k, v, err)
		}
	}
	return r, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", p)
	}
	return p, nil
}

// FormatFaultPlan renders a plan one rule per line.
func FormatFaultPlan(p *FaultPlan) string {
	if p.Empty() {
		return ""
	}
	lines := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		lines[i] = FormatFaultRule(r)
	}
	return strings.Join(lines, "\n") + "\n"
}

// ParseFaultPlan parses the multi-line table form: one rule per line,
// blank lines and #-comments ignored. An empty input yields an empty
// plan.
func ParseFaultPlan(text string) (*FaultPlan, error) {
	p := &FaultPlan{}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseFaultRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}
