package netapi

import (
	"strings"
	"testing"
	"time"
)

func TestFaultRuleMatching(t *testing.T) {
	a := func(ip string, port int) Addr { return Addr{IP: ip, Port: port} }
	cases := []struct {
		name    string
		rule    FaultRule
		proto   string
		from    Addr
		to      Addr
		elapsed time.Duration
		want    bool
	}{
		{"wildcard", FaultRule{}, "udp", a("10.0.0.1", 1), a("10.0.0.2", 2), 0, true},
		{"star", FaultRule{From: "*", To: "*"}, "udp", a("10.0.0.1", 1), a("10.0.0.2", 2), 0, true},
		{"exact ip", FaultRule{From: "10.0.0.1"}, "udp", a("10.0.0.1", 99), a("10.0.0.2", 2), 0, true},
		{"wrong ip", FaultRule{From: "10.0.0.3"}, "udp", a("10.0.0.1", 99), a("10.0.0.2", 2), 0, false},
		{"ip port", FaultRule{To: "10.0.0.2:427"}, "udp", a("10.0.0.1", 1), a("10.0.0.2", 427), 0, true},
		{"wrong port", FaultRule{To: "10.0.0.2:428"}, "udp", a("10.0.0.1", 1), a("10.0.0.2", 427), 0, false},
		{"any host with port", FaultRule{To: "*:427"}, "udp", a("10.0.0.1", 1), a("10.0.0.2", 427), 0, true},
		{"prefix", FaultRule{From: "10.0.1.*"}, "udp", a("10.0.1.77", 1), a("10.0.0.2", 2), 0, true},
		{"prefix miss", FaultRule{From: "10.0.1.*"}, "udp", a("10.0.10.1", 1), a("10.0.0.2", 2), 0, false},
		{"proto gate", FaultRule{Proto: "udp"}, "stream", a("10.0.0.1", 1), a("10.0.0.2", 2), 0, false},
		{"window before", FaultRule{Start: time.Second}, "udp", a("10.0.0.1", 1), a("10.0.0.2", 2), 500 * time.Millisecond, false},
		{"window inside", FaultRule{Start: time.Second, End: 2 * time.Second}, "udp", a("10.0.0.1", 1), a("10.0.0.2", 2), 1500 * time.Millisecond, true},
		{"window after", FaultRule{Start: time.Second, End: 2 * time.Second}, "udp", a("10.0.0.1", 1), a("10.0.0.2", 2), 2 * time.Second, false},
		{"no end", FaultRule{Start: time.Second}, "udp", a("10.0.0.1", 1), a("10.0.0.2", 2), time.Hour, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.rule.Matches(c.proto, c.from, c.to, c.elapsed); got != c.want {
				t.Fatalf("Matches(%s, %v, %v, %v) = %v, want %v", c.proto, c.from, c.to, c.elapsed, got, c.want)
			}
		})
	}
}

func TestFaultPlanRoundTrip(t *testing.T) {
	plan := &FaultPlan{Rules: []FaultRule{
		{Name: "cut", From: "10.0.0.1", To: "10.0.0.9:427", Proto: "udp",
			Start: 2 * time.Millisecond, End: 6 * time.Millisecond, Partition: true},
		{From: "10.0.1.*", Loss: 0.3, Delay: time.Millisecond, DelayJitter: 500 * time.Microsecond,
			Duplicate: 0.25, DuplicateDelay: time.Millisecond, Reorder: 0.1, ReorderDelay: 2 * time.Millisecond},
	}}
	text := FormatFaultPlan(plan)
	got, err := ParseFaultPlan(text)
	if err != nil {
		t.Fatalf("parse formatted plan: %v\n%s", err, text)
	}
	if len(got.Rules) != len(plan.Rules) {
		t.Fatalf("round trip lost rules: %d -> %d", len(plan.Rules), len(got.Rules))
	}
	for i := range plan.Rules {
		if got.Rules[i] != plan.Rules[i] {
			t.Fatalf("rule %d changed:\n  in:  %+v\n  out: %+v", i, plan.Rules[i], got.Rules[i])
		}
	}
	if again := FormatFaultPlan(got); again != text {
		t.Fatalf("format not stable:\n%s\nvs\n%s", text, again)
	}
}

func TestParseFaultPlanCommentsAndErrors(t *testing.T) {
	p, err := ParseFaultPlan("# a comment\n\nfault loss=0.5\n")
	if err != nil || len(p.Rules) != 1 || p.Rules[0].Loss != 0.5 {
		t.Fatalf("comment handling: %+v, %v", p, err)
	}
	for _, bad := range []string{
		"loss=0.5",              // missing keyword
		"fault loss=1.5",        // probability out of range
		"fault proto=tcp",       // unknown proto
		"fault delay=fast",      // bad duration
		"fault nonsense=1",      // unknown key
		"fault partition=maybe", // partition takes no value
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
	if p, err := ParseFaultPlan(""); err != nil || !p.Empty() {
		t.Fatalf("empty input: %+v, %v", p, err)
	}
}

func TestFormatFaultRuleOmitsZeroFields(t *testing.T) {
	got := FormatFaultRule(FaultRule{Loss: 0.5})
	if got != "fault loss=0.5" {
		t.Fatalf("got %q", got)
	}
	if strings.Contains(FormatFaultRule(FaultRule{Partition: true}), "=") {
		t.Fatalf("bare partition rule grew key=value fields: %q", FormatFaultRule(FaultRule{Partition: true}))
	}
}
