package netapi_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/realnet"
	"starlink/internal/simnet"
)

func TestAddrStringParseRoundTrip(t *testing.T) {
	for _, a := range []netapi.Addr{
		{IP: "10.0.0.1", Port: 427},
		{IP: "239.255.255.253", Port: 427},
		{IP: "127.0.0.1", Port: 0},
	} {
		got, err := netapi.ParseAddr(a.String())
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("round trip %v -> %v", a, got)
		}
	}
}

func TestParseAddrRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "10.0.0.1", ":427", "10.0.0.1:", "10.0.0.1:x", "10.0.0.1:-1", "10.0.0.1:70000"} {
		if _, err := netapi.ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) should fail", s)
		}
	}
}

func TestAddrPredicates(t *testing.T) {
	if !(netapi.Addr{}).IsZero() {
		t.Fatal("zero addr must be zero")
	}
	if (netapi.Addr{IP: "10.0.0.1", Port: 1}).IsZero() {
		t.Fatal("non-zero addr must not be zero")
	}
	if !(netapi.Addr{IP: "224.0.0.1"}).IsMulticast() || !(netapi.Addr{IP: "239.255.255.253"}).IsMulticast() {
		t.Fatal("224/4 addresses are multicast")
	}
	if (netapi.Addr{IP: "10.0.0.1"}).IsMulticast() || (netapi.Addr{IP: "garbage"}).IsMulticast() {
		t.Fatal("unicast/garbage addresses are not multicast")
	}
}

// A datagram's Packet.From must be a usable reply address: sending back
// to it reaches the original socket (the mechanism behind the engine's
// transparent replies).
func TestSourceReplyRoundTrip(t *testing.T) {
	sim := simnet.New()
	serverNode, _ := sim.NewNode("10.0.0.5")
	clientNode, _ := sim.NewNode("10.0.0.1")

	var server netapi.UDPSocket
	server, err := serverNode.OpenUDP(9000, func(pkt netapi.Packet) {
		if err := server.Send(pkt.From, append([]byte("re:"), pkt.Data...)); err != nil {
			t.Errorf("reply: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var got string
	client, err := clientNode.OpenUDP(0, func(pkt netapi.Packet) { got = string(pkt.Data) })
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(netapi.Addr{IP: "10.0.0.5", Port: 9000}, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(func() bool { return got != "" }, time.Second); err != nil {
		t.Fatal(err)
	}
	if got != "re:ping" {
		t.Fatalf("got %q", got)
	}
}

// Concurrent replies from multiple goroutines must all arrive: the
// runtimes guarantee Send is safe to call off the dispatcher (the
// engine replies from per-session goroutines).
func TestConcurrentReplySimnet(t *testing.T) {
	sim := simnet.New()
	serverNode, _ := sim.NewNode("10.0.0.5")
	clientNode, _ := sim.NewNode("10.0.0.1")

	const n = 32
	received := 0
	client, err := clientNode.OpenUDP(0, func(netapi.Packet) { received++ })
	if err != nil {
		t.Fatal(err)
	}
	server, err := serverNode.OpenUDP(9000, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	dest := client.LocalAddr()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := server.Send(dest, []byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := sim.RunUntil(func() bool { return received == n }, time.Second); err != nil {
		t.Fatalf("received %d of %d: %v", received, n, err)
	}
}

func TestConcurrentReplyRealnet(t *testing.T) {
	rt := realnet.New()
	serverNode, _ := rt.NewNode("10.0.0.5")
	clientNode, _ := rt.NewNode("10.0.0.1")

	const n = 32
	var mu sync.Mutex
	received := 0
	client, err := clientNode.OpenUDP(0, func(netapi.Packet) {
		mu.Lock()
		received++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	server, err := serverNode.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	dest := client.LocalAddr()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := server.Send(dest, []byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	err = rt.RunUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return received == n
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

// The WorkTracker contract: RunUntil must not conclude "no pending
// events" while handed-off work is in flight, and must observe the
// events that work schedules when it completes.
func TestWorkTrackerHoldsVirtualClock(t *testing.T) {
	sim := simnet.New()
	nd, _ := sim.NewNode("10.0.0.1")
	wt, ok := nd.(netapi.WorkTracker)
	if !ok {
		t.Fatal("simnet nodes must implement WorkTracker")
	}

	fired := false
	// Seed one event so the loop starts; its handler hands work off to
	// a goroutine that schedules the real event only after a delay.
	nd.After(time.Millisecond, func() {
		wt.WorkAdd()
		go func() {
			time.Sleep(20 * time.Millisecond) // real time, off-dispatcher
			nd.After(time.Millisecond, func() { fired = true })
			wt.WorkDone()
		}()
	})
	if err := sim.RunUntil(func() bool { return fired }, time.Second); err != nil {
		t.Fatalf("RunUntil gave up while work was in flight: %v", err)
	}
}

// Addr.String and Addr.IsMulticast run on every datagram send; the
// //starlink:hotpath annotations (enforced by starlink-vet's
// hotpathalloc analyzer) keep fmt-based parsing from regressing back
// in, so this only checks rendering correctness.
func TestAddrString(t *testing.T) {
	a := netapi.Addr{IP: "239.255.255.253", Port: 42700}
	if s := a.String(); s != "239.255.255.253:42700" {
		t.Fatalf("String = %q", s)
	}
}

func TestIsMulticastEdgeCases(t *testing.T) {
	for ip, want := range map[string]bool{
		"224.0.0.1":       true,
		"239.255.255.253": true,
		"223.9.9.9":       false,
		"240.0.0.1":       false,
		"22.4.0.1":        false,
		"2249.0.0.1":      false, // only 1-3 digits then a dot
		"224":             false,
		".224.0.0.1":      false,
		"abc.0.0.1":       false,
	} {
		if got := (netapi.Addr{IP: ip}).IsMulticast(); got != want {
			t.Errorf("IsMulticast(%q) = %v, want %v", ip, got, want)
		}
	}
}

// A leased buffer must round-trip through take/release, signalling the
// transfer through the dispatcher's own flag, and a double release
// must panic (it would hand one buffer to two owners).
func TestBufferLeaseLifecycle(t *testing.T) {
	b := netapi.NewBuffer()
	copy(b.Backing(), "hello")
	b.SetFilled(5)
	if string(b.Bytes()) != "hello" {
		t.Fatalf("Bytes = %q", b.Bytes())
	}
	retained := false
	pkt := netapi.Packet{Data: b.Bytes(), Buf: b}
	pkt.BindLeaseFlag(&retained)
	lease := pkt.TakeLease()
	if lease != b {
		t.Fatal("TakeLease must hand over the packet's buffer")
	}
	if !retained {
		t.Fatal("TakeLease must set the dispatcher's bound lease flag")
	}
	lease.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	lease.Release()
}

func TestTakeLeaseNilBuf(t *testing.T) {
	if (netapi.Packet{Data: []byte("x")}).TakeLease() != nil {
		t.Fatal("TakeLease on heap-owned data must be nil")
	}
}
