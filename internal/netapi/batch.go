package netapi

// Batch is a slab of pooled receive buffers leased together for a
// batched receive syscall (recvmmsg): one lease-accounting atomic
// covers the whole slab instead of one per buffer, so the amortised
// bookkeeping cost of an N-packet batch is 1/N of the per-datagram
// path.
//
// Ownership rules mirror Buffer's single-holder contract, lifted to
// the slab:
//
//   - LeaseBatch(n) returns n leased buffers; the caller owns every
//     slot until it either releases the slab (Release) or transfers a
//     slot to another owner.
//   - A slot whose lease was taken by a handler (the per-delivery
//     BindLeaseFlag protocol — each datagram in a batch still gets its
//     own frame-local flag) is transferred by nilling it out; the new
//     owner settles it with Buffer.Release, which carries its own
//     single-buffer decrement, so the accounting balances slot by
//     slot.
//   - Release returns every remaining (non-nil) slot to the pool with
//     one decrement covering them all, and nils the slots. After a
//     bulk Release the batch variable is dead: touching the slab again
//     without Refill is a use-after-release, and leasecheck reports it.
//   - Refill re-leases the nil slots (transferred or bulk-released) so
//     the same slab array feeds the next batched read without
//     reallocating.
type Batch []*Buffer

// LeaseBatch leases a slab of n pooled buffers under one accounting
// increment. The caller owns all n slots.
func LeaseBatch(n int) Batch {
	b := make(Batch, n)
	for i := range b {
		b[i] = get()
	}
	outstanding.Add(int64(n))
	return b
}

// Release returns every remaining slot to the pool and settles the
// slab's lease accounting with a single decrement. Slots already
// transferred (nil) are skipped — their new owners release them
// individually. The slab's variable must not be used again until
// Refill restores it.
func (b Batch) Release() {
	k := 0
	for i, buf := range b {
		if buf == nil {
			continue
		}
		buf.recycle()
		b[i] = nil
		k++
	}
	if k > 0 {
		outstanding.Add(int64(-k))
	}
}

// Refill re-leases every empty (nil) slot from the pool under one
// accounting increment, restoring the slab to full strength for the
// next batched read. Slots still held are left untouched.
func (b Batch) Refill() {
	k := 0
	for i, buf := range b {
		if buf != nil {
			continue
		}
		b[i] = get()
		k++
	}
	if k > 0 {
		outstanding.Add(int64(k))
	}
}
