// Package netapi defines the network abstraction all Starlink
// components and legacy protocol stacks are written against. Two
// runtimes implement it: internal/simnet, a deterministic discrete-event
// simulator with a virtual clock (used by tests and the Fig. 12
// benchmark harness), and internal/realnet, real loopback sockets (used
// by the examples and the bridge daemon).
//
// The model is event-driven: every inbound packet, stream chunk,
// accepted connection and timer fires a callback on the runtime's
// single dispatcher, so protocol code needs no locking and behaves
// identically under virtual and real time. This mirrors the paper's
// architecture where a single Network Engine mediates all I/O (Fig. 6).
package netapi

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Addr is a network endpoint. IP is a dotted-quad string; multicast
// groups use their group address (e.g. 239.255.255.253).
type Addr struct {
	IP   string
	Port int
}

// String renders "ip:port".
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// ParseAddr parses an "ip:port" endpoint as rendered by Addr.String.
func ParseAddr(s string) (Addr, error) {
	i := strings.LastIndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return Addr{}, fmt.Errorf("netapi: address %q is not ip:port", s)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil || port < 0 || port > 65535 {
		return Addr{}, fmt.Errorf("netapi: address %q has invalid port", s)
	}
	return Addr{IP: s[:i], Port: port}, nil
}

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a.IP == "" && a.Port == 0 }

// IsMulticast reports whether the IP is in the IPv4 multicast range
// (224.0.0.0/4).
func (a Addr) IsMulticast() bool {
	var first int
	if _, err := fmt.Sscanf(a.IP, "%d.", &first); err != nil {
		return false
	}
	return first >= 224 && first <= 239
}

// Packet is one received datagram.
type Packet struct {
	From Addr
	To   Addr
	Data []byte
}

// PacketHandler consumes inbound datagrams. Handlers run on the
// runtime dispatcher; they must not block.
type PacketHandler func(pkt Packet)

// UDPSocket is a bound datagram socket.
type UDPSocket interface {
	// LocalAddr returns the bound address.
	LocalAddr() Addr
	// Send transmits a datagram. A multicast destination fans out to
	// all group members; a unicast destination delivers to the bound
	// socket at that address.
	Send(to Addr, data []byte) error
	// Close releases the socket. Closing twice is a no-op.
	Close() error
}

// Conn is a stream (TCP-like) connection. Data arrives through the
// StreamHandler registered at dial/listen time; the stream preserves
// order and loses nothing, but chunk boundaries are not meaningful —
// consumers must frame (parser.Framer).
type Conn interface {
	LocalAddr() Addr
	RemoteAddr() Addr
	Send(data []byte) error
	Close() error
}

// ConnHandler is invoked for each accepted inbound connection.
type ConnHandler func(conn Conn)

// StreamHandler consumes inbound stream bytes for a connection. A nil
// data slice signals the peer closed the connection.
type StreamHandler func(conn Conn, data []byte)

// TimerID identifies a scheduled callback for cancellation.
type TimerID uint64

// Node is one host's view of the network.
type Node interface {
	// IP returns the node's address.
	IP() string
	// OpenUDP binds a datagram socket. Port 0 picks an ephemeral port.
	OpenUDP(port int, h PacketHandler) (UDPSocket, error)
	// JoinGroup binds a socket that receives datagrams addressed to
	// the multicast group, and can send/receive unicast as well.
	JoinGroup(group Addr, h PacketHandler) (UDPSocket, error)
	// ListenStream accepts inbound stream connections on a port.
	ListenStream(port int, accept ConnHandler, recv StreamHandler) (Closer, error)
	// DialStream opens a stream connection to a listener.
	DialStream(to Addr, recv StreamHandler) (Conn, error)

	// Now returns the runtime's current time (virtual under simnet).
	Now() time.Time
	// After schedules fn on the dispatcher after d.
	After(d time.Duration, fn func()) TimerID
	// Cancel revokes a scheduled callback; unknown IDs are ignored.
	Cancel(id TimerID)

	// Close releases the node: every socket and listener it opened is
	// closed, and runtimes that register nodes by address free the
	// address for reuse. Closing twice is a no-op. Deployment owners
	// (core.Bridge, the provisioning dispatcher) close their node on
	// teardown and on every failed-deploy path, so an aborted deploy
	// never leaks endpoints.
	Close() error
}

// Closer releases a listener or other bound resource.
type Closer interface {
	Close() error
}

// WorkTracker is optionally implemented by nodes of runtimes whose
// event loop must know about work handed off to other goroutines.
//
// The concurrent Automata Engine processes inbound payloads on
// per-session goroutines instead of inside the dispatcher callback.
// A runtime with a virtual clock (simnet) must therefore not advance
// time — nor let RunUntil conclude "no pending events" — while such
// work is still in flight, because the work will schedule new events
// when it completes. The contract:
//
//   - WorkAdd is called before a payload/timer is handed off the
//     dispatcher; WorkDone when the resulting processing finished
//     (including every follow-up Send/After it performs).
//   - The runtime's event loop waits for the in-flight count to reach
//     zero before popping the next event and before evaluating a
//     RunUntil condition, which also establishes the happens-before
//     edge that makes engine state safe to read after RunUntil.
//
// Runtimes running on the wall clock (realnet) implement it so that
// RunUntil conditions observe quiesced state; pure wall-clock users
// may omit it, in which case callers fall back to no tracking.
type WorkTracker interface {
	WorkAdd()
	WorkDone()
}

// Runtime creates nodes and drives the event loop.
type Runtime interface {
	// NewNode creates a host with the given IP.
	NewNode(ip string) (Node, error)
	// RunUntil drives the runtime until cond() holds or the timeout
	// (in runtime time) elapses; it returns an error on timeout.
	RunUntil(cond func() bool, timeout time.Duration) error
	// Run drives the runtime for d (virtual or wall-clock time).
	Run(d time.Duration)
}
