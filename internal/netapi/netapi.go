// Package netapi defines the network abstraction all Starlink
// components and legacy protocol stacks are written against. Two
// runtimes implement it: internal/simnet, a deterministic discrete-event
// simulator with a virtual clock (used by tests and the Fig. 12
// benchmark harness), and internal/realnet, real loopback sockets (used
// by the examples and the bridge daemon).
//
// # Concurrency contract: per-endpoint serial execution
//
// The model is event-driven: every inbound packet, stream chunk,
// accepted connection and timer fires a callback. The ordering
// guarantee is per endpoint, not global:
//
//   - Callbacks for one endpoint (a UDP socket, a stream connection, a
//     listener's accepts) never overlap and arrive in order, so
//     handler state keyed to one endpoint needs no locking.
//   - Callbacks for distinct endpoints MAY run in parallel. The
//     runtime does not impose a global serialisation policy on hosted
//     components (the infrastructure stays policy-free; the paper's
//     single Network Engine of Fig. 6 is realised per endpoint).
//
// Endpoints are grouped into serial dispatch domains. By default every
// endpoint a node opens — and every timer it schedules — shares the
// node's root domain, so a protocol component that owns its node (the
// legacy stacks under internal/protocols) keeps the exact
// single-threaded execution model it was written against, with zero
// locking. Thread-safe components that want cross-endpoint parallelism
// on one host (the Automata Engine, the provisioning dispatcher) opt
// in through Detach: endpoints opened through a detached node view
// each get a private domain and dispatch concurrently.
//
// # Buffer ownership
//
// Inbound datagram bytes are delivered in leased pooled buffers where
// the runtime supports it (realnet): Packet.Data is valid for the
// duration of the callback, and a handler that needs the bytes longer
// takes the lease with Packet.TakeLease and releases it exactly once
// (see Buffer). When Packet.TakeLease returns nil the data is
// heap-owned and immutable (simnet deliveries, framed stream
// payloads); consumers may retain the slice without copying.
package netapi

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Addr is a network endpoint. IP is a dotted-quad string; multicast
// groups use their group address (e.g. 239.255.255.253).
type Addr struct {
	IP   string
	Port int
}

// String renders "ip:port". One allocation (the returned string): the
// scratch buffer is stack-sized for every dotted-quad address.
//
//starlink:hotpath
func (a Addr) String() string {
	var buf [64]byte
	b := buf[:0]
	if len(a.IP) > len(buf)-21 {
		b = make([]byte, 0, len(a.IP)+21)
	}
	b = append(b, a.IP...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(a.Port), 10)
	return string(b)
}

// ParseAddr parses an "ip:port" endpoint as rendered by Addr.String.
func ParseAddr(s string) (Addr, error) {
	i := strings.LastIndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return Addr{}, fmt.Errorf("netapi: address %q is not ip:port", s)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil || port < 0 || port > 65535 {
		return Addr{}, fmt.Errorf("netapi: address %q has invalid port", s)
	}
	return Addr{IP: s[:i], Port: port}, nil
}

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a.IP == "" && a.Port == 0 }

// IsMulticast reports whether the IP is in the IPv4 multicast range
// (224.0.0.0/4). Allocation-free: it runs on every datagram send.
//
//starlink:hotpath
func (a Addr) IsMulticast() bool {
	// Parse the leading decimal octet by hand; reject anything that is
	// not 1-3 digits followed by a dot.
	first := 0
	i := 0
	for ; i < len(a.IP) && i < 3; i++ {
		c := a.IP[i]
		if c < '0' || c > '9' {
			break
		}
		first = first*10 + int(c-'0')
	}
	if i == 0 || i >= len(a.IP) || a.IP[i] != '.' {
		return false
	}
	return first >= 224 && first <= 239
}

// Packet is one received datagram.
type Packet struct {
	From Addr
	To   Addr
	Data []byte
	// Buf is the leased buffer backing Data on runtimes with pooled
	// receive buffers; nil when the data is heap-owned and immutable.
	// Handlers take ownership through TakeLease, never directly.
	Buf *Buffer

	// Batch is the number of datagrams delivered by the same receive
	// syscall as this one: >1 when a batched receive (recvmmsg)
	// carried the packet, 1 on per-datagram reads, 0 when the runtime
	// does not track receive batching (simnet). Observability only —
	// it feeds the engine's batched-ingest counters; the lease and
	// ordering contracts are identical at every value.
	Batch int

	// leased points at lease-transfer state owned by the dispatching
	// read loop (see BindLeaseFlag); nil when Buf is nil.
	leased *bool
}

// BindLeaseFlag points the packet's lease-transfer signal at a flag
// owned by the dispatching read loop. Runtimes set it before invoking
// the handler; after the callback returns they read their own flag —
// not buffer state — to learn whether the lease was taken, so the
// signal cannot be perturbed by the buffer's next lease if the new
// owner releases it immediately (see the Buffer doc).
func (p *Packet) BindLeaseFlag(f *bool) { p.leased = f }

// TakeLease transfers ownership of the packet's backing buffer to the
// caller, who must Release it exactly once when done with Data. It
// must be called synchronously inside the handler callback (it records
// the transfer in the dispatching read loop's own state, which only
// the callback's goroutine may touch). A nil result means the data is
// heap-owned and immutable: the caller may keep the slice without
// copying, and there is nothing to release.
func (p Packet) TakeLease() *Buffer {
	if p.Buf == nil {
		return nil
	}
	if p.leased == nil {
		// A runtime that sets Buf but never bound a lease flag would
		// keep reusing a buffer the handler now owns — corruption with
		// no crash. Fail fast instead.
		panic("netapi: Packet.Buf set without BindLeaseFlag; the dispatching runtime must bind a lease flag before the callback")
	}
	*p.leased = true
	return p.Buf
}

// PacketHandler consumes inbound datagrams. Handlers for one socket
// run serially; they must not block.
type PacketHandler func(pkt Packet)

// UDPSocket is a bound datagram socket.
type UDPSocket interface {
	// LocalAddr returns the bound address.
	LocalAddr() Addr
	// Send transmits a datagram. A multicast destination fans out to
	// all group members; a unicast destination delivers to the bound
	// socket at that address. Safe to call from any goroutine.
	Send(to Addr, data []byte) error
	// Close releases the socket. Closing twice is a no-op.
	Close() error
}

// Conn is a stream (TCP-like) connection. Data arrives through the
// StreamHandler registered at dial/listen time; the stream preserves
// order and loses nothing, but chunk boundaries are not meaningful —
// consumers must frame (parser.Framer).
type Conn interface {
	LocalAddr() Addr
	RemoteAddr() Addr
	// Send transmits bytes in order. Safe to call from any goroutine;
	// concurrent sends are coalesced, never interleaved mid-call.
	Send(data []byte) error
	Close() error
}

// ConnHandler is invoked for each accepted inbound connection.
type ConnHandler func(conn Conn)

// StreamHandler consumes inbound stream bytes for a connection. A nil
// data slice signals the peer closed the connection. Chunks for one
// connection are delivered serially and in order.
type StreamHandler func(conn Conn, data []byte)

// TimerID identifies a scheduled callback for cancellation.
type TimerID uint64

// Node is one host's view of the network.
type Node interface {
	// IP returns the node's address.
	IP() string
	// OpenUDP binds a datagram socket. Port 0 picks an ephemeral port.
	OpenUDP(port int, h PacketHandler) (UDPSocket, error)
	// JoinGroup binds a socket that receives datagrams addressed to
	// the multicast group, and can send/receive unicast as well.
	JoinGroup(group Addr, h PacketHandler) (UDPSocket, error)
	// ListenStream accepts inbound stream connections on a port.
	ListenStream(port int, accept ConnHandler, recv StreamHandler) (Closer, error)
	// DialStream opens a stream connection to a listener.
	DialStream(to Addr, recv StreamHandler) (Conn, error)

	// Now returns the runtime's current time (virtual under simnet).
	Now() time.Time
	// After schedules fn after d. The callback runs on the node's root
	// dispatch domain: serialised with the node's undetached endpoint
	// callbacks and its other timers.
	After(d time.Duration, fn func()) TimerID
	// Cancel revokes a scheduled callback; unknown IDs are ignored.
	Cancel(id TimerID)

	// Close releases the node: every socket and listener it opened is
	// closed, and runtimes that register nodes by address free the
	// address for reuse. Closing twice is a no-op. Deployment owners
	// (core.Bridge, the provisioning dispatcher) close their node on
	// teardown and on every failed-deploy path, so an aborted deploy
	// never leaks endpoints. Endpoints opened through a detached view
	// of the node are owned — and closed — the same way. The one
	// exception is a dialed connection handed to the runtime's reuse
	// pool via ConnParker: parking transfers ownership to the runtime
	// (bounded per destination), so it no longer closes with the node.
	Close() error
}

// Closer releases a listener or other bound resource.
type Closer interface {
	Close() error
}

// EndpointDetacher is implemented by nodes whose runtime can dispatch
// distinct endpoints concurrently. DetachEndpoints returns a view of
// the node on which every subsequently opened endpoint gets a private
// serial dispatch domain: callbacks for that endpoint stay ordered,
// but nothing serialises them against the node's other endpoints or
// timers. Only components that are themselves thread-safe (the
// Automata Engine, the provisioning dispatcher) should detach;
// single-threaded protocol stacks must keep the default node-scoped
// domain. The view shares the node's identity and resources: Close on
// either closes everything.
type EndpointDetacher interface {
	DetachEndpoints() Node
}

// Detach returns a detached view of the node when the runtime supports
// per-endpoint parallel dispatch, and the node itself otherwise.
func Detach(n Node) Node {
	if d, ok := n.(EndpointDetacher); ok {
		return d.DetachEndpoints()
	}
	return n
}

// ConnParker is implemented by nodes whose runtime keeps a dial-side
// connection pool. ParkConn returns a healthy dialed connection to the
// runtime for reuse by a later DialStream to the same address instead
// of closing it; it reports false when the connection cannot be pooled
// (not dialed here, dialed undetached, already closed, or the pool is
// full), in which case the caller should Close it normally. The pool
// only serves detached dials: a reused connection keeps the private
// dispatch domain it was dialed with, so pooling an undetached
// connection — or handing one to an undetached caller — would entangle
// distinct nodes' serial execution; undetached DialStream always opens
// a fresh connection. Only park a connection
// whose inbound stream is at a clean frame boundary: bytes that arrive
// while parked evict the connection, but a partial frame already
// consumed would silently desynchronise the next user.
type ConnParker interface {
	ParkConn(c Conn) bool
}

// WorkTracker is optionally implemented by nodes of runtimes whose
// event loop must know about work handed off to other goroutines.
//
// The concurrent Automata Engine processes inbound payloads on
// per-session goroutines instead of inside the dispatch callback.
// A runtime with a virtual clock (simnet) must therefore not advance
// time — nor let RunUntil conclude "no pending events" — while such
// work is still in flight, because the work will schedule new events
// when it completes. The contract:
//
//   - WorkAdd is called before a payload/timer is handed off the
//     dispatching callback; WorkDone when the resulting processing
//     finished (including every follow-up Send/After it performs).
//   - The runtime's event loop waits for the in-flight count to reach
//     zero before popping the next event and before evaluating a
//     RunUntil condition, which also establishes the happens-before
//     edge that makes engine state safe to read after RunUntil.
//
// Runtimes running on the wall clock (realnet) implement it so that
// RunUntil conditions observe quiesced state; pure wall-clock users
// may omit it, in which case callers fall back to no tracking.
type WorkTracker interface {
	WorkAdd()
	WorkDone()
}

// Runtime creates nodes and drives the event loop.
type Runtime interface {
	// NewNode creates a host with the given IP.
	NewNode(ip string) (Node, error)
	// RunUntil drives the runtime until cond() holds or the timeout
	// (in runtime time) elapses; it returns an error on timeout. cond
	// is evaluated while every node's root dispatch domain is quiet,
	// so state written by undetached callbacks is safe to read; state
	// owned by detached endpoints must be read through the owning
	// component's own synchronisation (e.g. Engine.Stats).
	RunUntil(cond func() bool, timeout time.Duration) error
	// Run drives the runtime for d (virtual or wall-clock time).
	Run(d time.Duration)
}
