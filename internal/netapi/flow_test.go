package netapi

import (
	"sync"
	"testing"
	"time"
)

func TestFlowGateCounting(t *testing.T) {
	g := NewFlowGate()
	if g.Blocked() {
		t.Fatal("new gate blocked")
	}
	g.Pause()
	g.Pause()
	if !g.Blocked() {
		t.Fatal("gate open with two holds")
	}
	g.Resume()
	if !g.Blocked() {
		t.Fatal("gate open with one hold outstanding")
	}
	g.Resume()
	if g.Blocked() {
		t.Fatal("gate blocked with no holds")
	}
	if g.Pauses() != 1 {
		t.Fatalf("pause cycles = %d, want 1 (nested holds are one cycle)", g.Pauses())
	}
}

func TestFlowGateResumeWithoutPausePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Resume did not panic")
		}
	}()
	NewFlowGate().Resume()
}

func TestFlowGateWaitBlocksUntilOpen(t *testing.T) {
	g := NewFlowGate()
	g.Wait() // open gate: returns immediately
	g.Pause()
	released := make(chan struct{})
	go func() {
		g.Wait()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("Wait returned while gate blocked")
	case <-time.After(20 * time.Millisecond):
	}
	g.Resume()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not return after Resume")
	}
}

func TestFlowGateNotifyOnReopen(t *testing.T) {
	g := NewFlowGate()
	var mu sync.Mutex
	calls := 0
	g.Notify(func() { mu.Lock(); calls++; mu.Unlock() })
	g.Pause()
	g.Pause()
	g.Resume() // still blocked: no notification
	mu.Lock()
	if calls != 0 {
		mu.Unlock()
		t.Fatalf("notified %d times while still blocked", calls)
	}
	mu.Unlock()
	g.Resume()
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("notified %d times on reopen, want 1", calls)
	}
}

func TestGatedFallback(t *testing.T) {
	// A node whose runtime offers no flow control passes through
	// unchanged, as does a nil gate.
	n := stubNode{}
	if got := Gated(n, NewFlowGate()); got != Node(n) {
		t.Fatal("Gated wrapped a node without FlowLimiter support")
	}
	if got := Gated(n, nil); got != Node(n) {
		t.Fatal("Gated with nil gate did not pass through")
	}
	ln := &limiterNode{}
	if got := Gated(ln, NewFlowGate()); got != Node(gatedStub{}) {
		t.Fatalf("Gated did not delegate to GateEndpoints: %v", got)
	}
}

type stubNode struct{}

func (stubNode) IP() string                                    { return "" }
func (stubNode) OpenUDP(int, PacketHandler) (UDPSocket, error) { return nil, nil }
func (stubNode) JoinGroup(Addr, PacketHandler) (UDPSocket, error) {
	return nil, nil
}
func (stubNode) ListenStream(int, ConnHandler, StreamHandler) (Closer, error) {
	return nil, nil
}
func (stubNode) DialStream(Addr, StreamHandler) (Conn, error) { return nil, nil }
func (stubNode) Now() time.Time                               { return time.Time{} }
func (stubNode) After(time.Duration, func()) TimerID          { return 0 }
func (stubNode) Cancel(TimerID)                               {}
func (stubNode) Close() error                                 { return nil }

type gatedStub struct{ stubNode }

type limiterNode struct{ stubNode }

func (*limiterNode) GateEndpoints(*FlowGate) Node { return gatedStub{} }
