package netapi

import (
	"sync"
	"sync/atomic"
)

// FlowGate is the backpressure signal between a bounded ingest queue
// and the transport read loops feeding it. It is a counting gate:
// every queue that crosses its high watermark takes one Pause hold,
// and releases it with Resume once it drains back to its low
// watermark. The gate is blocked while any hold is outstanding —
// several pressured queues keep the transport paused until the last
// one recovers.
//
// Transports consume the gate two ways:
//
//   - realnet read loops call Blocked before each read and Wait while
//     the gate is blocked, releasing their leased read buffer first (a
//     paused loop must not pin pool memory);
//   - simnet checks Blocked at delivery time and defers the delivery,
//     then re-schedules it when a Notify callback reports the gate
//     reopened — modeling the pause deterministically on the virtual
//     clock.
//
// Every Pause must eventually be matched by a Resume (queue teardown
// included), or paused read loops never wake; Resume without a
// matching Pause panics.
type FlowGate struct {
	// blocked mirrors holds > 0 for the lock-free fast path read on
	// every packet delivery.
	blocked atomic.Bool

	mu     sync.Mutex
	cond   *sync.Cond
	holds  int
	pauses uint64
	subs   []func()
}

// NewFlowGate returns an open gate.
func NewFlowGate() *FlowGate {
	g := &FlowGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Pause takes one hold on the gate. The first hold blocks the gate.
func (g *FlowGate) Pause() {
	g.mu.Lock()
	g.holds++
	if g.holds == 1 {
		g.pauses++
		g.blocked.Store(true)
	}
	g.mu.Unlock()
}

// Resume releases one hold. Releasing the last hold reopens the gate:
// waiting read loops wake and every Notify subscriber is invoked (with
// no gate lock held). Resume without a matching Pause panics.
func (g *FlowGate) Resume() {
	g.mu.Lock()
	if g.holds <= 0 {
		g.mu.Unlock()
		panic("netapi: FlowGate.Resume without a matching Pause")
	}
	g.holds--
	var subs []func()
	if g.holds == 0 {
		g.blocked.Store(false)
		g.cond.Broadcast()
		subs = append(subs, g.subs...)
	}
	g.mu.Unlock()
	for _, fn := range subs {
		fn()
	}
}

// Blocked reports whether any hold is outstanding. Lock-free.
//
//starlink:hotpath
func (g *FlowGate) Blocked() bool { return g.blocked.Load() }

// Wait blocks until the gate is open. It returns immediately when the
// gate is already open.
func (g *FlowGate) Wait() {
	g.mu.Lock()
	for g.holds > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Notify subscribes fn to blocked→open transitions. fn runs on the
// resuming goroutine with no gate lock held; it must not call Resume.
func (g *FlowGate) Notify(fn func()) {
	g.mu.Lock()
	g.subs = append(g.subs, fn)
	g.mu.Unlock()
}

// Pauses returns the cumulative number of blocked→open cycles started
// (the number of times the first hold was taken). Diagnostics only.
func (g *FlowGate) Pauses() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pauses
}

// FlowLimiter is implemented by nodes whose runtime can pause endpoint
// read loops under backpressure. GateEndpoints returns a node view
// whose endpoints honor the gate: while it is blocked, realnet read
// loops park (releasing their leased buffers) and simnet defers
// deliveries, both resuming when the gate reopens. The view composes
// with EndpointDetacher — gating a detached view yields gated,
// detached endpoints.
type FlowLimiter interface {
	GateEndpoints(g *FlowGate) Node
}

// Gated returns a view of n whose endpoints honor the flow gate, or n
// itself when its runtime offers no flow control (or g is nil). The
// graceful fallback mirrors Detach: callers get backpressure when the
// runtime supports it and unchanged behavior when it does not.
func Gated(n Node, g *FlowGate) Node {
	if g == nil {
		return n
	}
	if fl, ok := n.(FlowLimiter); ok {
		return fl.GateEndpoints(g)
	}
	return n
}
