package netapi

import (
	"sync"
	"sync/atomic"
)

// BufferSize is the capacity of every leased receive buffer: 64 KiB,
// the largest datagram either runtime delivers.
const BufferSize = 64 * 1024

var bufferPool = sync.Pool{
	New: func() any { return &Buffer{data: make([]byte, BufferSize)} },
}

// outstanding counts leased-but-unreleased buffers process-wide: one
// atomic increment per NewBuffer, one decrement per Release. It exists
// for the DST lease-balance invariant — after a simulated run tears
// down, the delta over the run must be zero or some owner leaked (or
// double-released, which panics first).
var outstanding atomic.Int64

// LeasedBuffers returns the number of pool buffers currently leased
// (NewBuffer minus Release). Meaningful as a before/after delta around
// a quiescent run; concurrent read loops elsewhere in the process make
// the absolute value a moving target.
func LeasedBuffers() int64 { return outstanding.Load() }

// Buffer is a leased receive buffer from a shared fixed-size pool.
//
// Runtimes read inbound datagrams directly into a Buffer and hand it
// to the packet handler through Packet.Buf, so the hot receive path
// allocates nothing per datagram. Ownership is single-holder and
// explicit:
//
//   - While the handler callback runs, the packet's Data (a view into
//     the buffer) is valid and the runtime still owns the buffer; a
//     handler that finishes with the bytes synchronously does nothing,
//     and the runtime reuses the buffer for the next datagram.
//   - A handler that needs the bytes beyond the callback — e.g. the
//     Automata Engine queueing the payload for an ingest worker —
//     takes the lease with Packet.TakeLease and MUST Release it
//     exactly once when done (for the engine: right after the payload
//     is parsed into pooled messages, or on the drop path, or at
//     session cleanup for events still queued at teardown). The
//     parser never aliases its input, so post-parse release is safe.
//
// Release returns the buffer to the pool; releasing twice panics,
// because a double release would hand one buffer to two owners.
//
// The lease-transfer signal itself ("did the handler take the buffer?")
// deliberately does NOT live on the Buffer: once TakeLease runs, the
// new owner may Release at any moment and the pool may re-lease the
// same Buffer to another read loop, so any per-buffer flag the first
// read loop checked after its callback could be mutated by the
// buffer's next life. Instead Packet.BindLeaseFlag points the packet
// at a bool owned by the dispatching read loop, which TakeLease sets
// synchronously inside the callback — state no other goroutine can
// ever touch, no matter how fast the buffer is recycled.
type Buffer struct {
	data     []byte
	n        int
	released bool
}

// NewBuffer leases a buffer from the pool.
func NewBuffer() *Buffer {
	b := get()
	outstanding.Add(1)
	return b
}

// get pulls a reset buffer from the pool without touching the lease
// accounting — the caller is responsible for the outstanding
// increment, which lets LeaseBatch/Refill amortise one atomic over a
// whole slab.
func get() *Buffer {
	b := bufferPool.Get().(*Buffer)
	b.n = 0
	b.released = false
	return b
}

// Backing exposes the buffer's full capacity for the runtime's read
// call; the runtime then records the filled length with SetFilled.
func (b *Buffer) Backing() []byte { return b.data }

// SetFilled records how many bytes of the backing array hold data.
func (b *Buffer) SetFilled(n int) {
	if n < 0 || n > len(b.data) {
		panic("netapi: Buffer.SetFilled out of range")
	}
	b.n = n
}

// Bytes returns the filled portion of the buffer.
func (b *Buffer) Bytes() []byte { return b.data[:b.n] }

// Release returns the buffer to the pool. The caller must be the
// buffer's single owner; releasing twice panics.
func (b *Buffer) Release() {
	b.recycle()
	outstanding.Add(-1)
}

// recycle returns the buffer to the pool without touching the lease
// accounting — the bulk counterpart of get(), used by Batch.Release
// to settle a whole slab with one atomic.
func (b *Buffer) recycle() {
	if b.released {
		panic("netapi: Buffer released twice")
	}
	b.released = true
	bufferPool.Put(b)
}
