package netapi

import "sync/atomic"

// IOStats is a snapshot of the process-wide transport syscall
// counters. They exist to pin batching structurally: wall-clock gains
// from recvmmsg/sendmmsg are noisy on small CI boxes, but "the ingest
// scenario completed N packets in far fewer than N receive syscalls"
// is a deterministic, assertable fact. The collector exposes them as
// starlink_udp_*/starlink_stream_* series.
type IOStats struct {
	// RecvBatches counts batched receive syscalls (recvmmsg) that
	// returned at least one datagram; RecvBatchPackets counts the
	// datagrams they returned, so RecvBatchPackets/RecvBatches is the
	// mean batch size. RecvMultiBatches counts the batches that
	// carried more than one datagram — the series promcheck asserts
	// nonzero under ingest saturation.
	RecvBatches      uint64
	RecvBatchPackets uint64
	RecvMultiBatches uint64
	// RecvSingles counts per-datagram receives on the portable path
	// (non-Linux, the no-batch build tag, or batching disabled at
	// runtime).
	RecvSingles uint64

	// SendBatches counts batched send syscalls (sendmmsg) on the
	// multicast fan-out; SendBatchPackets counts the datagrams they
	// carried. SendSingles counts per-datagram sends (unicast and the
	// portable fan-out).
	SendBatches      uint64
	SendBatchPackets uint64
	SendSingles      uint64

	// StreamFlushes counts coalesced stream-writer flushes;
	// StreamFlushChunks counts the queued chunks those flushes drained,
	// so chunks/flushes > 1 means one vectored write (writev) is
	// draining backlogs that the pre-batch writer paid one syscall per
	// chunk for.
	StreamFlushes     uint64
	StreamFlushChunks uint64
}

var ioStats struct {
	recvBatches      atomic.Uint64
	recvBatchPackets atomic.Uint64
	recvMultiBatches atomic.Uint64
	recvSingles      atomic.Uint64
	sendBatches      atomic.Uint64
	sendBatchPackets atomic.Uint64
	sendSingles      atomic.Uint64
	streamFlushes    atomic.Uint64
	streamChunks     atomic.Uint64
}

// CountRecvBatch records one batched receive syscall that returned n
// datagrams.
func CountRecvBatch(n int) {
	ioStats.recvBatches.Add(1)
	ioStats.recvBatchPackets.Add(uint64(n))
	if n > 1 {
		ioStats.recvMultiBatches.Add(1)
	}
}

// CountRecvSingle records one per-datagram receive on the portable
// path.
func CountRecvSingle() { ioStats.recvSingles.Add(1) }

// CountSendBatch records one batched send syscall that carried n
// datagrams.
func CountSendBatch(n int) {
	ioStats.sendBatches.Add(1)
	ioStats.sendBatchPackets.Add(uint64(n))
}

// CountSendSingle records one per-datagram send.
func CountSendSingle() { ioStats.sendSingles.Add(1) }

// CountStreamFlush records one coalesced stream-writer flush that
// drained chunks queued chunks in a single vectored write.
func CountStreamFlush(chunks int) {
	ioStats.streamFlushes.Add(1)
	ioStats.streamChunks.Add(uint64(chunks))
}

// ReadIOStats snapshots the process-wide transport counters. Like
// LeasedBuffers, the counters are monotonic and process-global:
// meaningful as a before/after delta around a scoped run.
func ReadIOStats() IOStats {
	return IOStats{
		RecvBatches:       ioStats.recvBatches.Load(),
		RecvBatchPackets:  ioStats.recvBatchPackets.Load(),
		RecvMultiBatches:  ioStats.recvMultiBatches.Load(),
		RecvSingles:       ioStats.recvSingles.Load(),
		SendBatches:       ioStats.sendBatches.Load(),
		SendBatchPackets:  ioStats.sendBatchPackets.Load(),
		SendSingles:       ioStats.sendSingles.Load(),
		StreamFlushes:     ioStats.streamFlushes.Load(),
		StreamFlushChunks: ioStats.streamChunks.Load(),
	}
}
