package bench

import (
	"testing"
	"time"
)

func TestStats(t *testing.T) {
	s := &Stats{}
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		s.Add(d * time.Millisecond)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Min() != time.Millisecond || s.Max() != 5*time.Millisecond || s.Median() != 3*time.Millisecond {
		t.Fatalf("min/med/max = %v/%v/%v", s.Min(), s.Median(), s.Max())
	}
	if s.Mean() != 3*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean())
	}
	empty := &Stats{}
	if empty.Min() != 0 || empty.Max() != 0 || empty.Median() != 0 || empty.Mean() != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestRunNativeAllProtocols(t *testing.T) {
	for _, proto := range NativeOrder {
		d, err := RunNative(proto, 1)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		paper := Fig12a[proto]
		// Shape check: measured medians must land in the same regime as
		// the paper (within a factor ~1.5 of the published median).
		lo, hi := paper.Median/2, paper.Median*3/2
		if d < lo || d > hi {
			t.Errorf("%s: %v outside [%v, %v]", proto, d, lo, hi)
		}
	}
	if _, err := RunNative("CORBA", 1); err == nil {
		t.Fatal("unknown protocol should fail")
	}
}

func TestRunBridgeAllCases(t *testing.T) {
	for _, name := range CaseOrder {
		d, err := RunBridge(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		paper := Fig12b[name]
		lo, hi := paper.Median/2, paper.Median*3/2
		if d < lo || d > hi {
			t.Errorf("%s: %v outside [%v, %v]", name, d, lo, hi)
		}
	}
	if _, err := RunBridge("nope", 1); err == nil {
		t.Fatal("unknown case should fail")
	}
}

// TestFig12Shape verifies the paper's qualitative findings hold on a
// small run: the →SLP bridge cases are dominated by the SLP
// convergence wait; the other four cases cost a fraction of a second;
// native SLP is the slowest native stack.
func TestFig12Shape(t *testing.T) {
	natives, err := RunTable12a(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	bridges, err := RunTable12b(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if natives["SLP"].Median() < natives["UPnP"].Median() ||
		natives["UPnP"].Median() < natives["Bonjour"].Median() {
		t.Errorf("native ordering broken: SLP=%v UPnP=%v Bonjour=%v",
			natives["SLP"].Median(), natives["UPnP"].Median(), natives["Bonjour"].Median())
	}
	for _, slow := range []string{"upnp-to-slp", "bonjour-to-slp"} {
		if bridges[slow].Median() < 6*time.Second {
			t.Errorf("%s median %v; should be dominated by the 6.25s SLP wait", slow, bridges[slow].Median())
		}
	}
	for _, fast := range []string{"slp-to-upnp", "slp-to-bonjour", "upnp-to-bonjour", "bonjour-to-upnp"} {
		if bridges[fast].Median() > 500*time.Millisecond {
			t.Errorf("%s median %v; should be sub-second", fast, bridges[fast].Median())
		}
	}
	// Paper §VI: "in case 1 it is 5 percent" — SLP→UPnP translation is
	// tiny relative to a native SLP lookup.
	if 10*bridges["slp-to-upnp"].Median() > natives["SLP"].Median() {
		t.Errorf("slp-to-upnp %v should be <10%% of native SLP %v",
			bridges["slp-to-upnp"].Median(), natives["SLP"].Median())
	}
	t.Logf("\n%s", Table("Fig. 12(a) Native response times (ms)", NativeOrder, natives, Fig12a))
	t.Logf("\n%s", Table("Fig. 12(b) Starlink translation times (ms)", CaseOrder, bridges, Fig12b))
}

func TestTableRendering(t *testing.T) {
	st := &Stats{}
	st.Add(100 * time.Millisecond)
	out := Table("T", []string{"SLP", "missing"}, map[string]*Stats{"SLP": st}, Fig12a)
	if out == "" {
		t.Fatal("empty table")
	}
	for _, want := range []string{"SLP", "(no data)", "[5982/6022/6053]"} {
		if !contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
