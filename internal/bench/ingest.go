package bench

// The ingest-saturation scenario measures how fast the realnet runtime
// can push inbound datagrams through handler callbacks — the paper's
// Network Engine boundary (Fig. 6) under a multi-case dispatcher load.
// It is the workload behind BenchmarkParallelIngest and the
// `starlink-bench -table i` report.
//
// Topology: one receiver node opens N independent UDP endpoints (the
// shape of a provisioning dispatcher's shared entry listeners), and M
// sender nodes blast datagrams at them round-robin. Every received
// payload pays a fixed classification-sized CPU cost (a repeated FNV
// pass standing in for the signature index + header parse of a 7-case
// dispatcher) and is acknowledged, so each sender runs a window of one
// and loopback UDP never overflows its receive queue.
//
// Under the pre-PR5 contract every handler ran holding one global
// dispatcher mutex, so aggregate throughput was capped at a single
// core no matter how many endpoints existed; under per-endpoint serial
// execution the N endpoints dispatch in parallel and throughput scales
// with GOMAXPROCS. The receiver opts in through DetachEndpoints when
// the runtime offers it (the interface assertion keeps this file
// compilable against the pre-PR5 runtime, which is how the committed
// BENCH_PR5_BASELINE.txt numbers were captured).

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/realnet"
)

const (
	// ingestPayloadSize is the datagram size of the workload — the
	// regime of an SLP/SSDP discovery request.
	ingestPayloadSize = 512
	// ingestWorkRounds fixes the per-payload CPU cost at roughly the
	// cost of classifying and header-parsing the datagram against a
	// multi-case signature index (a few microseconds).
	ingestWorkRounds = 16
	// ingestAckTimeout bounds how long a sender waits for an expected
	// ack before declaring the run broken.
	ingestAckTimeout = 5 * time.Second
	// ingestWindow is each sender's in-flight window. Acks pace the
	// senders so loopback receive queues never overflow — the bound
	// keeps per-endpoint in-flight bytes far below the default socket
	// buffer — while a window deeper than one keeps the measurement an
	// ingest-throughput number rather than a round-trip-latency one.
	ingestWindow = 8
)

// ingestSink keeps the checksum loop observable so the compiler cannot
// elide ingestWork.
var ingestSink atomic.Uint64

// ingestWork models the per-payload dispatcher cost: a fixed number of
// FNV-1a passes over the datagram.
func ingestWork(data []byte) uint64 {
	var h uint64 = 1469598103934665603
	for r := 0; r < ingestWorkRounds; r++ {
		for _, b := range data {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	return h
}

// detachIngestEndpoints opts the receiver into per-endpoint parallel
// dispatch on runtimes that support it; on runtimes that serialise
// globally it is the identity.
func detachIngestEndpoints(n netapi.Node) netapi.Node {
	if d, ok := n.(interface{ DetachEndpoints() netapi.Node }); ok {
		return d.DetachEndpoints()
	}
	return n
}

// IngestResult summarises one ingest-saturation run.
type IngestResult struct {
	// Endpoints is the number of receiver UDP endpoints.
	Endpoints int
	// Senders is the number of concurrent sender goroutines.
	Senders int
	// Packets is the number of datagrams pushed through the ingress.
	Packets int
	// Elapsed is the wall-clock time of the sending phase only.
	Elapsed time.Duration
	// PacketsPerSec is Packets / Elapsed.
	PacketsPerSec float64
	// RecvBatches, RecvBatchPackets and RecvMultiBatches are the
	// process-wide batched-receive deltas over the run: recvmmsg calls
	// that returned datagrams, datagrams they carried, and calls that
	// carried more than one. All zero on the portable per-datagram
	// path.
	RecvBatches      uint64
	RecvBatchPackets uint64
	RecvMultiBatches uint64
	// MeanRecvBatch is RecvBatchPackets / RecvBatches — the realised
	// mean batch size. Under saturation it should clear 1: the whole
	// point of the recvmmsg hot path.
	MeanRecvBatch float64
}

// ingestRig is a ready-to-drive ingest topology: the receiver's
// endpoints and the senders' sockets are bound once so repeated run
// calls (benchmark iterations) measure only the ingress itself.
type ingestRig struct {
	rt        *realnet.Runtime
	recvNode  netapi.Node
	endpoints []netapi.UDPSocket
	senders   []*ingestSender
	handled   atomic.Int64
}

type ingestSender struct {
	node netapi.Node
	sock netapi.UDPSocket
	acks chan struct{}
}

// newIngestRig binds an ingest topology of `endpoints` receiver
// endpoints and `senders` sender sockets on one realnet runtime.
func newIngestRig(endpoints, senders int) (*ingestRig, error) {
	if endpoints < 1 || endpoints > 256 || senders < 1 || senders > 256 {
		return nil, fmt.Errorf("bench: endpoints and senders must be in 1..256 (got %d, %d)", endpoints, senders)
	}
	rig := &ingestRig{rt: realnet.New()}
	node, err := rig.rt.NewNode("10.0.0.5")
	if err != nil {
		return nil, err
	}
	rig.recvNode = detachIngestEndpoints(node)
	ack := []byte("ok")
	for i := 0; i < endpoints; i++ {
		// The handler replies on its own socket; an atomic cell closes
		// the bind-vs-first-datagram window under parallel dispatch.
		var cell atomic.Value
		sock, err := rig.recvNode.OpenUDP(0, func(pkt netapi.Packet) {
			ingestSink.Add(ingestWork(pkt.Data))
			rig.handled.Add(1)
			if s, ok := cell.Load().(netapi.UDPSocket); ok {
				_ = s.Send(pkt.From, ack)
			}
		})
		if err != nil {
			rig.Close()
			return nil, err
		}
		cell.Store(sock)
		rig.endpoints = append(rig.endpoints, sock)
	}
	for i := 0; i < senders; i++ {
		node, err := rig.rt.NewNode(fmt.Sprintf("10.0.1.%d", i+1))
		if err != nil {
			rig.Close()
			return nil, err
		}
		// The send loop lets window+1 datagrams into flight before its
		// first await (it waits only from i >= ingestWindow), so the ack
		// channel needs one extra slot or a full burst would drop an ack.
		s := &ingestSender{node: node, acks: make(chan struct{}, ingestWindow+1)}
		sock, err := node.OpenUDP(0, func(pkt netapi.Packet) {
			select {
			case s.acks <- struct{}{}:
			default:
			}
		})
		if err != nil {
			rig.Close()
			return nil, err
		}
		s.sock = sock
		rig.senders = append(rig.senders, s)
	}
	return rig, nil
}

// run pushes `packets` datagrams through the ingress, split across the
// rig's senders, and returns the elapsed wall-clock time.
func (rig *ingestRig) run(packets int) (time.Duration, error) {
	payload := make([]byte, ingestPayloadSize)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	start := time.Now()
	for si, s := range rig.senders {
		quota := packets / len(rig.senders)
		if si < packets%len(rig.senders) {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, s *ingestSender, quota int) {
			defer wg.Done()
			fail := func(err error) {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("bench: ingest sender %d: %w", si, err)
				}
				errMu.Unlock()
			}
			// Drain any ack left over from a previous run call.
			for {
				select {
				case <-s.acks:
					continue
				default:
				}
				break
			}
			timeout := time.NewTimer(ingestAckTimeout)
			defer timeout.Stop()
			awaitAck := func() bool {
				if !timeout.Stop() {
					select {
					case <-timeout.C:
					default:
					}
				}
				timeout.Reset(ingestAckTimeout)
				select {
				case <-s.acks:
					return true
				case <-timeout.C:
					fail(fmt.Errorf("no ack within %s", ingestAckTimeout))
					return false
				}
			}
			for i := 0; i < quota; i++ {
				dst := rig.endpoints[(si+i)%len(rig.endpoints)].LocalAddr()
				if err := s.sock.Send(dst, payload); err != nil {
					fail(err)
					return
				}
				if i >= ingestWindow && !awaitAck() {
					return
				}
			}
			// Drain the window's tail.
			tail := quota
			if tail > ingestWindow {
				tail = ingestWindow
			}
			for i := 0; i < tail; i++ {
				if !awaitAck() {
					return
				}
			}
		}(si, s, quota)
	}
	wg.Wait()
	return time.Since(start), firstErr
}

// Close releases every socket the rig bound.
func (rig *ingestRig) Close() {
	for _, s := range rig.senders {
		if s.sock != nil {
			_ = s.sock.Close()
		}
	}
	for _, sock := range rig.endpoints {
		_ = sock.Close()
	}
}

// RunParallelIngest drives the ingest-saturation scenario once:
// `packets` datagrams through `endpoints` receiver endpoints from
// `senders` concurrent senders over real loopback sockets.
func RunParallelIngest(endpoints, senders, packets int) (IngestResult, error) {
	if packets < 1 {
		return IngestResult{}, fmt.Errorf("bench: packets must be positive, got %d", packets)
	}
	rig, err := newIngestRig(endpoints, senders)
	if err != nil {
		return IngestResult{}, err
	}
	defer rig.Close()
	before := netapi.ReadIOStats()
	elapsed, err := rig.run(packets)
	after := netapi.ReadIOStats()
	res := IngestResult{
		Endpoints:        endpoints,
		Senders:          senders,
		Packets:          packets,
		Elapsed:          elapsed,
		RecvBatches:      after.RecvBatches - before.RecvBatches,
		RecvBatchPackets: after.RecvBatchPackets - before.RecvBatchPackets,
		RecvMultiBatches: after.RecvMultiBatches - before.RecvMultiBatches,
	}
	if elapsed > 0 {
		res.PacketsPerSec = float64(packets) / elapsed.Seconds()
	}
	if res.RecvBatches > 0 {
		res.MeanRecvBatch = float64(res.RecvBatchPackets) / float64(res.RecvBatches)
	}
	return res, err
}
