package bench

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements the minimal benchstat workflow the repo needs
// without external dependencies: parsing `go test -bench` output,
// summarising repeated runs, and comparing two result sets with the
// Mann-Whitney U test (the significance test benchstat itself uses).

// BenchSeries collects the repeated measurements of one benchmark.
type BenchSeries struct {
	Name        string    `json:"name"`
	NsPerOp     []float64 `json:"ns_per_op"`
	BytesPerOp  []float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp []float64 `json:"allocs_per_op,omitempty"`
}

// BenchSummary is the per-benchmark digest stored in JSON baselines.
type BenchSummary struct {
	Name         string  `json:"name"`
	N            int     `json:"n"`
	NsMedian     float64 `json:"ns_per_op_median"`
	NsMin        float64 `json:"ns_per_op_min"`
	NsMax        float64 `json:"ns_per_op_max"`
	AllocsMedian float64 `json:"allocs_per_op_median,omitempty"`
	BytesMedian  float64 `json:"bytes_per_op_median,omitempty"`
}

// ParseBenchOutput reads `go test -bench` output and groups the
// samples per benchmark name (the -count runs of one benchmark merge
// into one series). The goroutine-count suffix (-8) is stripped so
// files from machines with different GOMAXPROCS compare.
func ParseBenchOutput(r io.Reader) ([]*BenchSeries, error) {
	byName := map[string]*BenchSeries{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := byName[name]
		if s == nil {
			s = &BenchSeries{Name: name}
			byName[name] = s
			order = append(order, name)
		}
		// fields: name, iterations, value unit [value unit ...]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = append(s.NsPerOp, v)
			case "B/op":
				s.BytesPerOp = append(s.BytesPerOp, v)
			case "allocs/op":
				s.AllocsPerOp = append(s.AllocsPerOp, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]*BenchSeries, 0, len(order))
	for _, name := range order {
		if len(byName[name].NsPerOp) > 0 {
			out = append(out, byName[name])
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: no benchmark lines found")
	}
	return out, nil
}

// Summarise digests a series for the JSON baseline.
func (s *BenchSeries) Summarise() BenchSummary {
	sum := BenchSummary{Name: s.Name, N: len(s.NsPerOp)}
	sum.NsMedian = median(s.NsPerOp)
	sum.NsMin, sum.NsMax = minMax(s.NsPerOp)
	if len(s.AllocsPerOp) > 0 {
		sum.AllocsMedian = median(s.AllocsPerOp)
	}
	if len(s.BytesPerOp) > 0 {
		sum.BytesMedian = median(s.BytesPerOp)
	}
	return sum
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func minMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	return lo, hi
}

// MannWhitneyP returns the two-sided p-value of the Mann-Whitney U
// test for the hypothesis that a and b are drawn from the same
// distribution, using the normal approximation with tie correction —
// the same procedure benchstat applies for sample counts ≥ 8.
func MannWhitneyP(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return 1
	}
	type obs struct {
		v    float64
		from int
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Assign mid-ranks, accumulating the tie correction term.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.from == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - n1*(n1+1)/2
	mu := n1 * n2 / 2
	n := n1 + n2
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return 1 // all values tied: no evidence of difference
	}
	// Continuity correction.
	z := (math.Abs(u1-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	return math.Erfc(z / math.Sqrt2)
}

// DiffRow is one benchmark's old-vs-new comparison.
type DiffRow struct {
	Name      string
	OldNs     float64
	NewNs     float64
	NsDelta   float64 // percent; negative is faster
	NsP       float64
	OldAllocs float64
	NewAllocs float64
	AllocsPct float64
	AllocsP   float64
	HasAllocs bool
}

// CompareBenches aligns two parsed result sets by benchmark name and
// computes median deltas with significance.
func CompareBenches(old, new []*BenchSeries) []DiffRow {
	oldBy := map[string]*BenchSeries{}
	for _, s := range old {
		oldBy[s.Name] = s
	}
	var rows []DiffRow
	for _, n := range new {
		o, ok := oldBy[n.Name]
		if !ok {
			continue
		}
		row := DiffRow{
			Name:  n.Name,
			OldNs: median(o.NsPerOp),
			NewNs: median(n.NsPerOp),
			NsP:   MannWhitneyP(o.NsPerOp, n.NsPerOp),
		}
		if row.OldNs > 0 {
			row.NsDelta = (row.NewNs - row.OldNs) / row.OldNs * 100
		}
		if len(o.AllocsPerOp) > 0 && len(n.AllocsPerOp) > 0 {
			row.HasAllocs = true
			row.OldAllocs = median(o.AllocsPerOp)
			row.NewAllocs = median(n.AllocsPerOp)
			row.AllocsP = MannWhitneyP(o.AllocsPerOp, n.AllocsPerOp)
			if row.OldAllocs > 0 {
				row.AllocsPct = (row.NewAllocs - row.OldAllocs) / row.OldAllocs * 100
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatDiff renders the comparison as a benchstat-style table. Rows
// whose p-value exceeds alpha are marked not significant (~).
func FormatDiff(rows []DiffRow, alpha float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s %7s\n", "name", "old", "new", "delta", "p")
	mark := func(p float64) string {
		if p <= alpha {
			return ""
		}
		return " ~"
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-44s %12.0fns %12.0fns %+7.1f%% %6.3f%s\n",
			r.Name+" (time)", r.OldNs, r.NewNs, r.NsDelta, r.NsP, mark(r.NsP))
		if r.HasAllocs {
			fmt.Fprintf(&sb, "%-44s %14.1f %14.1f %+7.1f%% %6.3f%s\n",
				r.Name+" (allocs/op)", r.OldAllocs, r.NewAllocs, r.AllocsPct, r.AllocsP, mark(r.AllocsP))
		}
	}
	return sb.String()
}

// GateRow is one benchmark's fresh-run-vs-committed-baseline check.
type GateRow struct {
	Name       string
	BaseNs     float64 // committed baseline ns/op median
	NewNs      float64 // fresh run ns/op median
	NsDelta    float64 // percent; negative is faster
	Regressed  bool    // NsDelta beyond the allowed regression
	BaseAllocs float64
	NewAllocs  float64
	HasAllocs  bool
}

// GateAgainstBaseline aligns a fresh result set with a committed JSON
// baseline and flags ns/op medians that regressed beyond maxRegress
// percent. A single -benchtime=1x CI sample is noisy, so the gate is a
// coarse guard against catastrophic regressions (a reintroduced global
// lock, a lost fast path), not a statistical comparison — benchdiff's
// two-file mode with -count=10 runs remains the precise tool.
func GateAgainstBaseline(baseline []BenchSummary, fresh []*BenchSeries, maxRegress float64) (rows []GateRow, regressed bool) {
	base := map[string]BenchSummary{}
	for _, s := range baseline {
		base[s.Name] = s
	}
	for _, n := range fresh {
		b, ok := base[n.Name]
		if !ok {
			continue
		}
		row := GateRow{
			Name:   n.Name,
			BaseNs: b.NsMedian,
			NewNs:  median(n.NsPerOp),
		}
		if row.BaseNs > 0 {
			row.NsDelta = (row.NewNs - row.BaseNs) / row.BaseNs * 100
		}
		row.Regressed = row.NsDelta > maxRegress
		if b.AllocsMedian > 0 || len(n.AllocsPerOp) > 0 {
			row.HasAllocs = true
			row.BaseAllocs = b.AllocsMedian
			row.NewAllocs = median(n.AllocsPerOp)
		}
		if row.Regressed {
			regressed = true
		}
		rows = append(rows, row)
	}
	return rows, regressed
}

// FormatGate renders the baseline gate as a table.
func FormatGate(rows []GateRow, maxRegress float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s  gate(+%.0f%%)\n", "name", "baseline", "fresh", "delta", maxRegress)
	for _, r := range rows {
		verdict := "ok"
		if r.Regressed {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(&sb, "%-44s %12.0fns %12.0fns %+7.1f%%  %s\n", r.Name, r.BaseNs, r.NewNs, r.NsDelta, verdict)
		if r.HasAllocs {
			fmt.Fprintf(&sb, "%-44s %14.1f %14.1f\n", r.Name+" (allocs/op)", r.BaseAllocs, r.NewAllocs)
		}
	}
	return sb.String()
}
