package bench

// The overload scenario drives the lane-prioritized bounded ingest
// (internal/lanes) past capacity over real loopback sockets — the
// PR 8 robustness workload behind BenchmarkOverloadControlP99 and the
// `starlink-bench -table o` report.
//
// Topology: one receiver node opens a few UDP endpoints feeding a
// single lanes.Queue; payloads classify by their first byte ('c'
// control, 'd' data, anything else telemetry). Control traffic gets a
// dedicated ungated endpoint — session entry stays live no matter how
// hard the bulk endpoints are pushed back — while the data/telemetry
// endpoints share the queue's flow gate. One consumer drains the
// queue in strict priority order, paying a calibrated per-payload CPU
// cost, so the queue's service rate is known; sender nodes blast a
// mixed workload paced at a multiple of that rate. Past the high
// watermark the flow gate pauses the bulk read loops (the kernel
// socket buffer, then the wire, absorb or drop the excess — UDP
// semantics end to end) and the full telemetry ring sheds oldest
// first, so queue memory stays bounded by the rings no matter how
// hard the senders push, while the control lane keeps its latency.
//
// Latency is arrival-to-processed (queue wait plus service), so the
// uncontended baseline is about one service time and the acceptance
// ratio compares like with like.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/hist"
	"starlink/internal/lanes"
	"starlink/internal/netapi"
	"starlink/internal/realnet"
)

const (
	// overloadPayloadSize is the datagram size of the workload.
	overloadPayloadSize = 256
	// overloadWorkRounds fixes the consumer's per-payload CPU cost — a
	// heavy parse-translate-compose of about a millisecond — so the
	// queue's service rate sits far below what the loopback read path
	// delivers (the lane queue, not the wire, is the contended
	// resource) and the service time dominates scheduler round-robin
	// jitter even on a single-core machine.
	overloadWorkRounds = 3072
	// overloadEndpoints is the number of receiver UDP endpoints feeding
	// the queue: endpoint 0 carries control and is never gated, the
	// rest carry data/telemetry behind the flow gate (each paused read
	// loop may hold one in-flight datagram across a pause).
	overloadEndpoints = 4
	// overloadBurst is the sender pacing quantum: packets go out in
	// back-to-back bursts against a shared token clock, modelling the
	// bursty arrivals real discovery traffic has instead of a
	// metronome.
	overloadBurst = 8
	// overloadDrainTimeout bounds the post-flood wait for the queue to
	// empty.
	overloadDrainTimeout = 30 * time.Second
)

// overloadPolicy bounds the scenario's lane queue. The telemetry ring
// is deliberately smaller than the watermark headroom so both
// degradation mechanisms trigger under flood: the full telemetry ring
// sheds oldest-first, and total depth crossing High pauses the
// transports. The narrow High-Low gap keeps each post-resume delivery
// burst small, so the control payloads inside a burst wait behind only
// a handful of lane siblings and control p99 stays near its
// uncontended value even while telemetry sheds.
var overloadPolicy = lanes.Policy{Capacity: 256, High: 512, Low: 448, Mode: lanes.ShedOldest}

// overloadSink keeps the consumer's checksum loop observable so the
// compiler cannot elide overloadWork.
var overloadSink atomic.Uint64

// overloadWork models the per-payload consumer cost: a fixed number of
// FNV-1a passes over the scratch buffer.
func overloadWork(data []byte) uint64 {
	var h uint64 = 1469598103934665603
	for r := 0; r < overloadWorkRounds; r++ {
		for _, b := range data {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	return h
}

// calibrateOverloadWork measures the consumer's per-payload cost, the
// denominator of the scenario's overload factor.
func calibrateOverloadWork() time.Duration {
	scratch := make([]byte, overloadPayloadSize)
	for i := range scratch {
		scratch[i] = byte(i * 17)
	}
	const rounds = 512
	start := time.Now()
	for i := 0; i < rounds; i++ {
		overloadSink.Add(overloadWork(scratch))
	}
	per := time.Since(start) / rounds
	if per <= 0 {
		per = time.Microsecond
	}
	return per
}

// OverloadResult summarises one overload run.
type OverloadResult struct {
	// Factor is the configured arrival rate as a multiple of the
	// consumer's calibrated service rate (< 1 is an uncontended run).
	Factor float64
	// Senders and Packets shape the workload.
	Senders int
	Packets int
	// ServiceTime is the calibrated per-payload consumer cost.
	ServiceTime time.Duration
	// Received counts handler deliveries (sent minus what the paused
	// transports left to the kernel's UDP drop semantics).
	Received int
	// Processed counts payloads the consumer drained.
	Processed int
	// Lanes is the per-lane admission accounting of the queue.
	Lanes [lanes.NumLanes]lanes.Counters
	// MaxDepth is the high-water total queue depth; TotalCapacity the
	// hard ring bound it can never exceed (the bounded-memory witness).
	MaxDepth      int
	TotalCapacity int
	// Pauses counts gate pause transitions (watermark crossings).
	Pauses uint64
	// ControlP50/P99 and TelemetryP99 are arrival-to-processed latency
	// quantiles (queue wait plus the calibrated service cost).
	ControlP50   time.Duration
	ControlP99   time.Duration
	TelemetryP99 time.Duration
	// Elapsed covers the flood plus the post-flood drain.
	Elapsed time.Duration
}

type overloadItem struct {
	lane    lanes.Lane
	arrived time.Time
}

func classifyOverloadByte(b byte) lanes.Lane {
	switch b {
	case 'c':
		return lanes.Control
	case 'd':
		return lanes.Data
	default:
		return lanes.Telemetry
	}
}

// overloadMix assigns the i-th packet its lane byte: 10% control, 40%
// data, 50% telemetry — control well under the service rate even at
// the highest factor, data heavy enough to build real backlog.
func overloadMix(i int) byte {
	switch i % 10 {
	case 0:
		return 'c'
	case 1, 2, 3, 4:
		return 'd'
	default:
		return 't'
	}
}

// RunOverload floods the gated ingest with `packets` datagrams from
// `senders` sender nodes, paced at `factor` times the consumer's
// calibrated service rate, and reports the queue's admission
// accounting and wait quantiles. factor < 1 yields the uncontended
// baseline the overloaded control-lane p99 is judged against.
func RunOverload(packets, senders int, factor float64) (OverloadResult, error) {
	if packets < 1 || senders < 1 || senders > 64 || factor <= 0 {
		return OverloadResult{}, fmt.Errorf("bench: overload wants packets >= 1, senders in 1..64, factor > 0 (got %d, %d, %g)",
			packets, senders, factor)
	}
	res := OverloadResult{
		Factor:        factor,
		Senders:       senders,
		Packets:       packets,
		ServiceTime:   calibrateOverloadWork(),
		TotalCapacity: int(lanes.NumLanes) * overloadPolicy.Capacity,
	}

	rt := realnet.New()
	gate := netapi.NewFlowGate()
	q := lanes.NewQueue[overloadItem](overloadPolicy, gate)
	node, err := rt.NewNode("10.0.0.5")
	if err != nil {
		return res, err
	}
	// Detached endpoints dispatch in parallel (each read loop gets a
	// private domain) instead of serializing on the node's root domain
	// — the receiver half of the PR 5 parallel ingress pipeline.
	detached := netapi.Detach(node)
	recvNode := netapi.Gated(detached, gate)

	var received atomic.Int64
	handle := func(pkt netapi.Packet) {
		if len(pkt.Data) == 0 {
			return
		}
		received.Add(1)
		// The item copies nothing out of pkt.Data, so the packet's
		// pooled buffer goes straight back to the runtime.
		lane := classifyOverloadByte(pkt.Data[0])
		q.Enqueue(lane, overloadItem{lane: lane, arrived: time.Now()})
		// The engine's ingest handler parks on locks and channels every
		// delivery; this closure would otherwise never yield, letting
		// one read loop replaying a kernel backlog monopolize a
		// single-core scheduler and charge its whole replay to the
		// queue waits of payloads already admitted.
		runtime.Gosched()
	}
	var endpoints []netapi.UDPSocket
	closeAll := func() {
		for _, s := range endpoints {
			_ = s.Close()
		}
	}
	for i := 0; i < overloadEndpoints; i++ {
		// Endpoint 0 is the control plane's: opened outside the gate so
		// the watermark pause never stalls session entry. The bulk
		// endpoints open behind the gate.
		opener := recvNode
		if i == 0 {
			opener = detached
		}
		sock, err := opener.OpenUDP(0, handle)
		if err != nil {
			closeAll()
			return res, err
		}
		endpoints = append(endpoints, sock)
	}
	defer closeAll()

	// Single consumer: strict-priority drain at the calibrated cost.
	var hists [lanes.NumLanes]*hist.Histogram
	for i := range hists {
		hists[i] = &hist.Histogram{}
	}
	scratch := make([]byte, overloadPayloadSize)
	var processed atomic.Int64
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		for {
			item, lane, ok := q.Dequeue()
			if !ok {
				return
			}
			overloadSink.Add(overloadWork(scratch))
			// Latency is arrival-to-processed: queue wait plus service.
			hists[lane].Record(time.Since(item.arrived))
			processed.Add(1)
			// The engine's ingest workers park at their inbox between
			// payloads; the same cooperative point here lets the read
			// loops interleave with the consumer on one core instead of
			// being starved for a whole scheduler slice.
			runtime.Gosched()
		}
	}()

	// Paced flood: senders share one token clock targeting
	// factor / ServiceTime arrivals per second.
	targetRate := factor / res.ServiceTime.Seconds()
	payload := make([]byte, overloadPayloadSize)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var (
		sent     atomic.Int64
		sendWG   sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	start := time.Now()
	for si := 0; si < senders; si++ {
		sendNode, err := rt.NewNode(fmt.Sprintf("10.0.1.%d", si+1))
		if err != nil {
			return res, err
		}
		sock, err := sendNode.OpenUDP(0, func(netapi.Packet) {})
		if err != nil {
			return res, err
		}
		sendWG.Add(1)
		go func(si int, sock netapi.UDPSocket) {
			defer sendWG.Done()
			defer sock.Close()
			buf := append([]byte(nil), payload...)
			for {
				// Claim a burst of packet indexes from the shared clock,
				// sleep until the burst's token time, then blast it
				// back-to-back.
				first := int(sent.Add(overloadBurst)) - overloadBurst
				if first >= packets {
					return
				}
				due := start.Add(time.Duration(float64(first) / targetRate * float64(time.Second)))
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				for i := first; i < first+overloadBurst && i < packets; i++ {
					buf[0] = overloadMix(i)
					// Control rides its dedicated ungated endpoint; bulk
					// traffic spreads over the gated ones.
					ep := 1 + i%(len(endpoints)-1)
					if buf[0] == 'c' {
						ep = 0
					}
					if err := sock.Send(endpoints[ep].LocalAddr(), buf); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("bench: overload sender %d: %w", si, err)
						}
						errMu.Unlock()
						return
					}
				}
			}
		}(si, sock)
	}
	sendWG.Wait()

	// Drain: wait for the backlog (and any datagrams still in kernel
	// buffers) to clear before snapshotting.
	deadline := time.Now().Add(overloadDrainTimeout)
	for q.Depth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	res.Elapsed = time.Since(start)

	res.Lanes = q.Counters()
	res.MaxDepth = q.MaxDepth()
	res.Pauses = gate.Pauses()
	res.Received = int(received.Load())
	res.Processed = int(processed.Load())
	ctl := hists[lanes.Control].Snapshot()
	res.ControlP50 = ctl.Quantile(0.50)
	res.ControlP99 = ctl.Quantile(0.99)
	res.TelemetryP99 = hists[lanes.Telemetry].Snapshot().Quantile(0.99)

	// Stop the consumer; anything still queued (drain timeout) is
	// dropped on the floor by Close, which is fine post-measurement.
	q.Close(nil)
	consumerWG.Wait()
	return res, firstErr
}
