package bench

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `
goos: linux
BenchmarkParse-8   	  100000	      5000 ns/op	    4000 B/op	      33 allocs/op
BenchmarkParse-8   	  100000	      5100 ns/op	    4000 B/op	      33 allocs/op
BenchmarkParse-8   	  100000	      4900 ns/op	    4000 B/op	      33 allocs/op
BenchmarkCompose-8 	   50000	     21000 ns/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	series, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	p := series[0]
	if p.Name != "BenchmarkParse" || len(p.NsPerOp) != 3 || len(p.AllocsPerOp) != 3 {
		t.Errorf("parsed series = %+v", p)
	}
	if got := median(p.NsPerOp); got != 5000 {
		t.Errorf("median ns = %v", got)
	}
	sum := p.Summarise()
	if sum.N != 3 || sum.NsMin != 4900 || sum.NsMax != 5100 || sum.AllocsMedian != 33 {
		t.Errorf("summary = %+v", sum)
	}
	if _, err := ParseBenchOutput(strings.NewReader("no benches here")); err == nil {
		t.Error("want error for empty input")
	}
}

func TestMannWhitney(t *testing.T) {
	a := []float64{10, 11, 10, 12, 11, 10, 11, 12, 10, 11}
	b := []float64{20, 21, 20, 22, 21, 20, 21, 22, 20, 21}
	if p := MannWhitneyP(a, b); p > 0.01 {
		t.Errorf("clearly shifted samples: p = %v, want < 0.01", p)
	}
	if p := MannWhitneyP(a, a); p < 0.5 {
		t.Errorf("identical samples: p = %v, want ~1", p)
	}
	if p := MannWhitneyP(nil, b); p != 1 {
		t.Errorf("empty sample: p = %v, want 1", p)
	}
}

func TestCompareAndFormat(t *testing.T) {
	old := []*BenchSeries{{
		Name:        "BenchmarkX",
		NsPerOp:     []float64{100, 102, 98, 101, 99, 100, 101, 99, 100, 102},
		AllocsPerOp: []float64{30, 30, 30, 30, 30, 30, 30, 30, 30, 30},
	}}
	new := []*BenchSeries{{
		Name:        "BenchmarkX",
		NsPerOp:     []float64{50, 52, 48, 51, 49, 50, 51, 49, 50, 52},
		AllocsPerOp: []float64{10, 10, 10, 10, 10, 10, 10, 10, 10, 10},
	}, {
		Name:    "BenchmarkOnlyNew",
		NsPerOp: []float64{1},
	}}
	rows := CompareBenches(old, new)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1 (unmatched benches drop)", len(rows))
	}
	r := rows[0]
	if r.NsDelta > -45 || r.NsP > 0.05 {
		t.Errorf("ns comparison = %+v", r)
	}
	if !r.HasAllocs || r.AllocsPct > -60 || r.AllocsP > 0.05 {
		t.Errorf("allocs comparison = %+v", r)
	}
	out := FormatDiff(rows, 0.05)
	if !strings.Contains(out, "BenchmarkX (allocs/op)") || strings.Contains(out, "~") {
		t.Errorf("formatted output:\n%s", out)
	}
}

func TestGateAgainstBaseline(t *testing.T) {
	baseline := []BenchSummary{
		{Name: "BenchmarkParallelIngest", NsMedian: 1000, AllocsMedian: 2},
		{Name: "BenchmarkOther", NsMedian: 500},
	}
	fresh := []*BenchSeries{
		{Name: "BenchmarkParallelIngest", NsPerOp: []float64{1400}, AllocsPerOp: []float64{0}},
		{Name: "BenchmarkNew", NsPerOp: []float64{1}},
	}
	rows, regressed := GateAgainstBaseline(baseline, fresh, 50)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only common benchmarks)", len(rows))
	}
	if regressed {
		t.Fatal("+40% must pass a 50% gate")
	}
	if rows[0].NsDelta < 39 || rows[0].NsDelta > 41 {
		t.Fatalf("delta = %.1f", rows[0].NsDelta)
	}
	rows, regressed = GateAgainstBaseline(baseline, []*BenchSeries{
		{Name: "BenchmarkParallelIngest", NsPerOp: []float64{1600}},
	}, 50)
	if !regressed || !rows[0].Regressed {
		t.Fatal("+60% must fail a 50% gate")
	}
	out := FormatGate(rows, 50)
	if !contains(out, "REGRESSED") {
		t.Fatalf("gate table missing verdict:\n%s", out)
	}
}
