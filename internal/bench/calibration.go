// Package bench reproduces the paper's performance evaluation (§VI,
// Fig. 12): the native response times of the three legacy discovery
// stacks, and the Starlink translation times of the six bridge cases,
// each as min/median/max over repeated runs on the deterministic
// network simulator.
package bench

import "time"

// Timing calibration. Each constant models a documented behaviour of
// the 2011 legacy stacks the paper measured (DESIGN.md §5); together
// they reproduce the *shape* of Fig. 12 — who is slow, by what factor,
// and why — not the authors' absolute Windows/JVM numbers.
const (
	// SLPConvergenceWait is the native SLP client's multicast
	// convergence window. OpenSLP keeps collecting SrvRply datagrams
	// over its retransmission schedule; the paper measures a 6022 ms
	// median for a native lookup (Fig. 12(a) row 1).
	SLPConvergenceWait = 6 * time.Second

	// SLPWaitJitter models the variance of that schedule (paper
	// min/max: 5982..6053 ms → roughly ±40 ms around the median).
	SLPWaitJitter = 80 * time.Millisecond

	// SLPResponseDelayMax: RFC 2608 §8 requires service agents to wait
	// a random time before answering multicast requests to avoid reply
	// implosion.
	SLPResponseDelayMax = 70 * time.Millisecond

	// BonjourBrowseWindow is the one-shot browse collection window of
	// the Apple SDK client (Fig. 12(a) row 2: 710 ms median).
	BonjourBrowseWindow = 700 * time.Millisecond

	// BonjourWindowJitter covers the paper's 687..726 ms spread.
	BonjourWindowJitter = 40 * time.Millisecond

	// MDNSAnswerDelayMin/Max: RFC 6762 §6 requires responders to delay
	// answers for shared records by a random amount; calibrated so the
	// first answer reaches a bridge after ~230-280 ms — the →Bonjour
	// rows of Fig. 12(b) (255-311 ms).
	MDNSAnswerDelayMin = 230 * time.Millisecond
	MDNSAnswerDelayMax = 280 * time.Millisecond

	// UPnPMXWindow is the Cyberlink control point's full MX search
	// window (Fig. 12(a) row 3: 1014 ms median = MX 1 s + description
	// fetch).
	UPnPMXWindow = time.Second

	// UPnPMXJitter covers the paper's 945..1079 ms spread.
	UPnPMXJitter = 120 * time.Millisecond

	// SSDPDeviceDelayMin/Max spreads device responses across the MX
	// window (UPnP DA: "wait a random interval less than MX");
	// calibrated so a bridge advancing on the first response sees
	// ~300-360 ms — the →UPnP rows of Fig. 12(b) (319-379 ms).
	SSDPDeviceDelayMin = 300 * time.Millisecond
	SSDPDeviceDelayMax = 360 * time.Millisecond

	// BridgeSLPWindowJitter perturbs the bridge's SLP convergence
	// window (model attribute convergence=6250 ms in
	// internal/models), reproducing the 6168..6450 ms spread of the
	// →SLP rows of Fig. 12(b).
	BridgeSLPWindowJitter = 200 * time.Millisecond

	// WideMX is the control-point window used when discovering through
	// a →SLP bridge: Cyberlink "does not bound the response time"
	// (paper §VI), so the control point outlives the bridge's 6.25 s
	// SLP convergence.
	WideMX = 8 * time.Second

	// WideBrowse is the equivalent for the Bonjour browser.
	WideBrowse = 8 * time.Second
)

// PaperRow records the paper's published numbers for comparison in
// reports (EXPERIMENTS.md).
type PaperRow struct {
	Min, Median, Max time.Duration
}

// Fig12a holds the paper's Fig. 12(a): native response times.
var Fig12a = map[string]PaperRow{
	"SLP":     {5982 * time.Millisecond, 6022 * time.Millisecond, 6053 * time.Millisecond},
	"Bonjour": {687 * time.Millisecond, 710 * time.Millisecond, 726 * time.Millisecond},
	"UPnP":    {945 * time.Millisecond, 1014 * time.Millisecond, 1079 * time.Millisecond},
}

// Fig12b holds the paper's Fig. 12(b): Starlink translation times.
var Fig12b = map[string]PaperRow{
	"slp-to-upnp":     {319 * time.Millisecond, 337 * time.Millisecond, 343 * time.Millisecond},
	"slp-to-bonjour":  {255 * time.Millisecond, 271 * time.Millisecond, 287 * time.Millisecond},
	"upnp-to-slp":     {6208 * time.Millisecond, 6311 * time.Millisecond, 6450 * time.Millisecond},
	"upnp-to-bonjour": {253 * time.Millisecond, 289 * time.Millisecond, 311 * time.Millisecond},
	"bonjour-to-upnp": {334 * time.Millisecond, 359 * time.Millisecond, 379 * time.Millisecond},
	"bonjour-to-slp":  {6168 * time.Millisecond, 6190 * time.Millisecond, 6244 * time.Millisecond},
}

// CaseOrder is the paper's row order for Fig. 12(b).
var CaseOrder = []string{
	"slp-to-upnp", "slp-to-bonjour", "upnp-to-slp",
	"upnp-to-bonjour", "bonjour-to-upnp", "bonjour-to-slp",
}

// NativeOrder is the paper's row order for Fig. 12(a).
var NativeOrder = []string{"SLP", "Bonjour", "UPnP"}
