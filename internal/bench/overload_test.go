package bench

import (
	"testing"

	"starlink/internal/lanes"
)

func TestRunOverloadShedsBounded(t *testing.T) {
	res, err := RunOverload(4000, 8, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	tel, ctl := res.Lanes[lanes.Telemetry], res.Lanes[lanes.Control]
	if tel.Shed == 0 {
		t.Errorf("no telemetry shed at %gx overload: %+v", res.Factor, res)
	}
	if ctl.Shed != 0 {
		t.Errorf("control shed %d payloads; control must degrade last", ctl.Shed)
	}
	if res.MaxDepth > res.TotalCapacity {
		t.Errorf("max depth %d exceeded the ring bound %d", res.MaxDepth, res.TotalCapacity)
	}
	if res.Pauses == 0 {
		t.Error("the high watermark never paused the transports")
	}
	if res.Processed == 0 || res.ControlP99 == 0 {
		t.Errorf("degenerate run: %+v", res)
	}
}

func TestRunOverloadRejectsBadShape(t *testing.T) {
	for _, tc := range []struct{ packets, senders int }{{0, 1}, {1, 0}, {1, 65}} {
		if _, err := RunOverload(tc.packets, tc.senders, 4.0); err == nil {
			t.Errorf("RunOverload(%d, %d) should fail", tc.packets, tc.senders)
		}
	}
	if _, err := RunOverload(1, 1, 0); err == nil {
		t.Error("factor 0 should fail")
	}
}

// BenchmarkOverloadControlP99 reports the control lane's
// arrival-to-processed p99 under a 4x over-capacity flood as its ns/op
// — the number the CI benchdiff gate holds against the committed
// BENCH_PR8.json baseline — alongside the uncontended (0.5x) p99 and
// the shed/pause evidence. b.N is the flood's packet count (clamped up
// so quantiles have samples behind them at -benchtime=1x); the
// baseline run is smaller because its paced arrival rate is an order
// of magnitude lower.
func BenchmarkOverloadControlP99(b *testing.B) {
	packets := b.N
	if packets < 2048 {
		packets = 2048
	}
	basePackets := packets / 4
	if basePackets < 1024 {
		basePackets = 1024
	}
	base, err := RunOverload(basePackets, 8, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := RunOverload(packets, 8, 4.0)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Lanes[lanes.Telemetry].Shed == 0 {
		b.Fatal("flood shed no telemetry; the scenario is not overloaded")
	}
	b.ReportMetric(float64(res.ControlP99.Nanoseconds()), "ns/op")
	b.ReportMetric(float64(base.ControlP99.Nanoseconds()), "base-p99-ns")
	b.ReportMetric(float64(res.ControlP99)/float64(base.ControlP99), "p99-ratio")
	b.ReportMetric(float64(res.Lanes[lanes.Telemetry].Shed), "shed")
	b.ReportMetric(float64(res.MaxDepth), "maxdepth")
	b.ReportMetric(float64(res.Pauses), "pauses")
}
