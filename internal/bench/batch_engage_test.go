//go:build linux && !starlink.nobatch

package bench

// Structural pin for the recvmmsg fast path: under the ingest-
// saturation scenario the kernel must actually hand the read loops
// multi-datagram batches. If a refactor quietly degrades the hot path
// to one datagram per syscall, throughput benchmarks drift slowly but
// this test fails immediately.

import "testing"

func TestIngestBatchingEngages(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation run")
	}
	res, err := RunParallelIngest(4, 16, 20000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ingest: %.0f pkts/s, %d recv batches carrying %d datagrams (mean %.2f, %d multi)",
		res.PacketsPerSec, res.RecvBatches, res.RecvBatchPackets, res.MeanRecvBatch, res.RecvMultiBatches)
	if res.RecvBatches == 0 {
		t.Fatal("no batched receives recorded: the recvmmsg path never engaged")
	}
	if res.RecvMultiBatches == 0 {
		t.Fatal("every recvmmsg call returned a single datagram: batching is structurally dead")
	}
	// Saturated loopback ingest with an 8-deep window per sender backs
	// datagrams up in the socket buffer; a healthy batch loop amortises
	// visibly above one datagram per wakeup.
	if res.MeanRecvBatch <= 1.05 {
		t.Fatalf("mean recv batch size %.3f, want > 1.05 under saturation", res.MeanRecvBatch)
	}
}
