package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats summarises repeated duration measurements the way the paper
// reports them: min, median and max over the runs.
type Stats struct {
	Samples []time.Duration
}

// Add records one measurement.
func (s *Stats) Add(d time.Duration) { s.Samples = append(s.Samples, d) }

// N returns the number of samples.
func (s *Stats) N() int { return len(s.Samples) }

func (s *Stats) sorted() []time.Duration {
	out := make([]time.Duration, len(s.Samples))
	copy(out, s.Samples)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Min returns the smallest sample.
func (s *Stats) Min() time.Duration {
	if len(s.Samples) == 0 {
		return 0
	}
	return s.sorted()[0]
}

// Max returns the largest sample.
func (s *Stats) Max() time.Duration {
	if len(s.Samples) == 0 {
		return 0
	}
	sorted := s.sorted()
	return sorted[len(sorted)-1]
}

// Median returns the middle sample (lower of the two for even counts,
// matching how the paper's single-millisecond medians read).
func (s *Stats) Median() time.Duration {
	if len(s.Samples) == 0 {
		return 0
	}
	sorted := s.sorted()
	return sorted[(len(sorted)-1)/2]
}

// Mean returns the average.
func (s *Stats) Mean() time.Duration {
	if len(s.Samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.Samples {
		sum += d
	}
	return sum / time.Duration(len(s.Samples))
}

// Row renders "min median max" in milliseconds.
func (s *Stats) Row() string {
	return fmt.Sprintf("%6d %8d %8d",
		s.Min().Milliseconds(), s.Median().Milliseconds(), s.Max().Milliseconds())
}

// Table formats a Fig. 12-style table with paper reference columns.
func Table(title string, order []string, measured map[string]*Stats, paper map[string]PaperRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-18s %6s %8s %8s   %s\n", "Case", "Min", "Median", "Max", "[paper min/median/max, ms]")
	for _, name := range order {
		st, ok := measured[name]
		if !ok {
			fmt.Fprintf(&sb, "%-18s %s\n", name, "(no data)")
			continue
		}
		ref := ""
		if p, ok := paper[name]; ok {
			ref = fmt.Sprintf("[%d/%d/%d]",
				p.Min.Milliseconds(), p.Median.Milliseconds(), p.Max.Milliseconds())
		}
		fmt.Fprintf(&sb, "%-18s %s   %s\n", name, st.Row(), ref)
	}
	return sb.String()
}
