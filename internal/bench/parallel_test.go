package bench

import (
	"runtime"
	"testing"
)

func TestRunParallelUnit(t *testing.T) {
	n, err := RunParallelUnit(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("completed = %d, want 8", n)
	}
}

func TestRunParallelSessions(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	res, err := RunParallelSessions(6, 4, workers, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 24 {
		t.Fatalf("sessions = %d, want 24", res.Sessions)
	}
	if res.PerSecond <= 0 {
		t.Fatalf("throughput = %v", res.PerSecond)
	}
}

func TestRunParallelSessionsValidates(t *testing.T) {
	if _, err := RunParallelSessions(0, 4, 1, 1); err == nil {
		t.Fatal("zero units should fail")
	}
	if _, err := RunParallelUnit(0, 1); err == nil {
		t.Fatal("zero clients should fail")
	}
}
