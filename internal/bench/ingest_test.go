package bench

import (
	"runtime"
	"testing"
)

func TestRunParallelIngest(t *testing.T) {
	res, err := RunParallelIngest(4, 8, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 200 {
		t.Fatalf("packets = %d, want 200", res.Packets)
	}
	if res.PacketsPerSec <= 0 {
		t.Fatalf("throughput = %v", res.PacketsPerSec)
	}
}

func TestRunParallelIngestRejectsBadShape(t *testing.T) {
	if _, err := RunParallelIngest(0, 1, 1); err == nil {
		t.Fatal("0 endpoints should fail")
	}
	if _, err := RunParallelIngest(1, 0, 1); err == nil {
		t.Fatal("0 senders should fail")
	}
	if _, err := RunParallelIngest(1, 1, 0); err == nil {
		t.Fatal("0 packets should fail")
	}
}

// BenchmarkParallelIngest is the PR 5 ingest-saturation scenario: N
// endpoints × M senders over real loopback sockets, with a
// classification-sized CPU cost per datagram. Under the retired global
// dispatcher lock this could not exceed one core; per-endpoint serial
// execution lets it scale with GOMAXPROCS. Compare runs with
// `go run ./cmd/benchdiff BENCH_PR5_BASELINE.txt <new>.txt`.
func BenchmarkParallelIngest(b *testing.B) {
	rig, err := newIngestRig(8, 32)
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Close()
	b.ResetTimer()
	elapsed, err := rig.run(b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if sec := elapsed.Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "pkts/s")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}
