package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"starlink/internal/core"
	"starlink/internal/engine"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/protocols/upnp"
	"starlink/internal/registry"
	"starlink/internal/simnet"
)

// The bridge scenarios measure steady-state translation, so every run
// shares one registry with a warm compiled-case cache — model loading
// has its own benchmark (BenchmarkModelLoad) and re-parsing the XML
// corpus per interaction would swamp the per-message numbers the
// paper's Fig. 12(b) reports. The registry is runtime-independent and
// concurrency-safe, so parallel units share it too.
var (
	sharedRegOnce sync.Once
	sharedReg     *registry.Registry
	sharedRegErr  error
)

func sharedRegistry() (*registry.Registry, error) {
	sharedRegOnce.Do(func() {
		sharedReg, sharedRegErr = registry.Builtin()
	})
	return sharedReg, sharedRegErr
}

// Universe is the service type of the benchmark workload in each
// protocol's spelling (the paper's "simple test service").
const (
	SLPType    = "service:printer"
	UPnPType   = "urn:printer"
	DNSName    = "printer.local"
	ServiceURL = "service:printer://10.0.0.9:515"
	HTTPURL    = "http://10.0.0.7:5431/svc"
)

// RunNative measures one native lookup of the given protocol
// ("SLP", "Bonjour" or "UPnP") on a fresh simulator seeded with seed,
// returning the client-observed response time — one sample of
// Fig. 12(a).
func RunNative(protocol string, seed int64) (time.Duration, error) {
	sim := simnet.New(simnet.WithSeed(seed))
	rng := rand.New(rand.NewSource(seed * 7919))
	switch protocol {
	case "SLP":
		return runNativeSLP(sim, rng)
	case "Bonjour":
		return runNativeBonjour(sim, rng)
	case "UPnP":
		return runNativeUPnP(sim, rng)
	default:
		return 0, fmt.Errorf("bench: unknown protocol %q", protocol)
	}
}

func runNativeSLP(sim *simnet.Net, rng *rand.Rand) (time.Duration, error) {
	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := slp.NewServiceAgent(svcNode, SLPType, ServiceURL,
		slp.WithResponseDelay(SLPResponseDelayMax, rng)); err != nil {
		return 0, err
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode,
		slp.WithConvergenceWait(SLPConvergenceWait),
		slp.WithWaitJitter(SLPWaitJitter, rng))
	var res slp.LookupResult
	done := false
	ua.Lookup(SLPType, func(r slp.LookupResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		return 0, err
	}
	if res.Err != nil {
		return 0, res.Err
	}
	if len(res.URLs) != 1 {
		return 0, fmt.Errorf("bench: native SLP lookup returned %d urls", len(res.URLs))
	}
	return res.Elapsed, nil
}

func runNativeBonjour(sim *simnet.Net, rng *rand.Rand) (time.Duration, error) {
	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, DNSName, ServiceURL,
		dnssd.WithAnswerDelay(MDNSAnswerDelayMin, MDNSAnswerDelayMax, rng)); err != nil {
		return 0, err
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	b := dnssd.NewBrowser(cliNode,
		dnssd.WithBrowseWindow(BonjourBrowseWindow),
		dnssd.WithWindowJitter(BonjourWindowJitter, rng))
	var res dnssd.BrowseResult
	done := false
	b.Browse(DNSName, func(r dnssd.BrowseResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		return 0, err
	}
	if res.Err != nil {
		return 0, res.Err
	}
	if len(res.URLs) != 1 {
		return 0, fmt.Errorf("bench: native Bonjour browse returned %d urls", len(res.URLs))
	}
	return res.Elapsed, nil
}

func runNativeUPnP(sim *simnet.Net, rng *rand.Rand) (time.Duration, error) {
	devNode, _ := sim.NewNode("10.0.0.7")
	if _, err := upnp.NewDevice(devNode, UPnPType, HTTPURL, 5431,
		upnp.WithSSDPDelay(SSDPDeviceDelayMin, SSDPDeviceDelayMax, rng)); err != nil {
		return 0, err
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	cp := upnp.NewControlPoint(cliNode,
		upnp.WithMX(UPnPMXWindow),
		upnp.WithMXJitter(UPnPMXJitter, rng))
	var res upnp.DiscoverResult
	done := false
	cp.Discover(UPnPType, func(r upnp.DiscoverResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		return 0, err
	}
	if res.Err != nil {
		return 0, res.Err
	}
	if len(res.ServiceURLs) != 1 {
		return 0, fmt.Errorf("bench: native UPnP discover returned %d urls", len(res.ServiceURLs))
	}
	return res.Elapsed, nil
}

// RunBridge measures one bridged interaction for a Fig. 12(b) case on a
// fresh simulator, returning the Starlink translation time (first
// message received by the framework → translated response sent).
func RunBridge(caseName string, seed int64) (time.Duration, error) {
	sim := simnet.New(simnet.WithSeed(seed))
	rng := rand.New(rand.NewSource(seed * 6007))
	reg, err := sharedRegistry()
	if err != nil {
		return 0, err
	}
	fw := core.NewWithRegistry(sim, reg)
	var stats []engine.SessionStats
	bridge, err := fw.DeployBridge(context.Background(), "10.0.0.5", caseName,
		engine.WithObserver(func(s engine.SessionStats) { stats = append(stats, s) }),
		engine.WithWindowJitter(BridgeSLPWindowJitter, seed*6007))
	if err != nil {
		return 0, err
	}
	defer bridge.Close()

	if err := startBridgeWorkload(sim, rng, caseName); err != nil {
		return 0, err
	}
	err = sim.RunUntil(func() bool {
		return len(stats) > 0 && (stats[0].Err != nil || !stats[0].ReplyAt.IsZero())
	}, 2*time.Minute)
	// Let the tail of the exchange (description GET, client windows)
	// finish so sockets close cleanly.
	sim.RunToQuiescence()
	if err != nil {
		return 0, err
	}
	if stats[0].Err != nil {
		return 0, stats[0].Err
	}
	return stats[0].Duration, nil
}

// startBridgeWorkload starts the legacy service and client appropriate
// for a case.
func startBridgeWorkload(sim *simnet.Net, rng *rand.Rand, caseName string) error {
	startSLPService := func() error {
		n, _ := sim.NewNode("10.0.0.9")
		_, err := slp.NewServiceAgent(n, SLPType, ServiceURL,
			slp.WithResponseDelay(SLPResponseDelayMax, rng))
		return err
	}
	startBonjourService := func() error {
		n, _ := sim.NewNode("10.0.0.9")
		_, err := dnssd.NewResponder(n, DNSName, ServiceURL,
			dnssd.WithAnswerDelay(MDNSAnswerDelayMin, MDNSAnswerDelayMax, rng))
		return err
	}
	startUPnPDevice := func() error {
		n, _ := sim.NewNode("10.0.0.7")
		_, err := upnp.NewDevice(n, UPnPType, HTTPURL, 5431,
			upnp.WithSSDPDelay(SSDPDeviceDelayMin, SSDPDeviceDelayMax, rng))
		return err
	}

	switch caseName {
	case "slp-to-upnp":
		if err := startUPnPDevice(); err != nil {
			return err
		}
		n, _ := sim.NewNode("10.0.0.1")
		ua := slp.NewUserAgent(n, slp.WithConvergenceWait(SLPConvergenceWait))
		ua.Lookup(SLPType, func(slp.LookupResult) {})
	case "slp-to-bonjour":
		if err := startBonjourService(); err != nil {
			return err
		}
		n, _ := sim.NewNode("10.0.0.1")
		ua := slp.NewUserAgent(n, slp.WithConvergenceWait(SLPConvergenceWait))
		ua.Lookup(SLPType, func(slp.LookupResult) {})
	case "upnp-to-slp":
		if err := startSLPService(); err != nil {
			return err
		}
		n, _ := sim.NewNode("10.0.0.1")
		cp := upnp.NewControlPoint(n, upnp.WithMX(WideMX))
		cp.Discover(UPnPType, func(upnp.DiscoverResult) {})
	case "upnp-to-bonjour":
		if err := startBonjourService(); err != nil {
			return err
		}
		n, _ := sim.NewNode("10.0.0.1")
		cp := upnp.NewControlPoint(n, upnp.WithMX(UPnPMXWindow))
		cp.Discover(UPnPType, func(upnp.DiscoverResult) {})
	case "bonjour-to-upnp":
		if err := startUPnPDevice(); err != nil {
			return err
		}
		n, _ := sim.NewNode("10.0.0.1")
		b := dnssd.NewBrowser(n, dnssd.WithBrowseWindow(BonjourBrowseWindow))
		b.Browse(DNSName, func(dnssd.BrowseResult) {})
	case "bonjour-to-slp":
		if err := startSLPService(); err != nil {
			return err
		}
		n, _ := sim.NewNode("10.0.0.1")
		b := dnssd.NewBrowser(n, dnssd.WithBrowseWindow(WideBrowse))
		b.Browse(DNSName, func(dnssd.BrowseResult) {})
	default:
		return fmt.Errorf("bench: unknown case %q", caseName)
	}
	return nil
}

// RunTable12a reproduces Fig. 12(a): iters native lookups per protocol.
func RunTable12a(iters int, baseSeed int64) (map[string]*Stats, error) {
	out := map[string]*Stats{}
	for _, proto := range NativeOrder {
		st := &Stats{}
		for i := 0; i < iters; i++ {
			d, err := RunNative(proto, baseSeed+int64(i))
			if err != nil {
				return nil, fmt.Errorf("bench: %s iteration %d: %w", proto, i, err)
			}
			st.Add(d)
		}
		out[proto] = st
	}
	return out, nil
}

// RunTable12b reproduces Fig. 12(b): iters bridged interactions per
// case.
func RunTable12b(iters int, baseSeed int64) (map[string]*Stats, error) {
	out := map[string]*Stats{}
	for _, name := range CaseOrder {
		st := &Stats{}
		for i := 0; i < iters; i++ {
			d, err := RunBridge(name, baseSeed+int64(i))
			if err != nil {
				return nil, fmt.Errorf("bench: %s iteration %d: %w", name, i, err)
			}
			st.Add(d)
		}
		out[name] = st
	}
	return out, nil
}
