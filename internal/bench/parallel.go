package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"starlink/internal/core"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/simnet"
)

// ParallelResult summarises a parallel-session throughput run.
type ParallelResult struct {
	// Units is the number of independent simulations driven.
	Units int
	// ClientsPerUnit is the number of concurrent bridge sessions each
	// simulation's engine hosted.
	ClientsPerUnit int
	// Workers is the goroutine count the units were spread across.
	Workers int
	// Sessions is the total number of successfully bridged sessions.
	Sessions int
	// Elapsed is the wall-clock time for the whole run.
	Elapsed time.Duration
	// PerSecond is Sessions / Elapsed.
	PerSecond float64
}

// RunParallelUnit drives one deterministic simulation in which
// `clients` concurrent SLP user agents are bridged to a Bonjour
// service through one slp-to-bonjour engine, and returns the number of
// completed bridge sessions. Each concurrent session exercises the
// engine's sharded table and per-session goroutines; each unit is an
// independent simulator, so units can run on parallel goroutines.
func RunParallelUnit(clients int, seed int64) (int, error) {
	if clients < 1 || clients > 200 {
		return 0, fmt.Errorf("bench: clients must be in 1..200, got %d", clients)
	}
	sim := simnet.New(simnet.WithSeed(seed))
	reg, err := sharedRegistry()
	if err != nil {
		return 0, err
	}
	fw := core.NewWithRegistry(sim, reg)
	bridge, err := fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-bonjour")
	if err != nil {
		return 0, err
	}
	defer bridge.Close()
	svcNode, err := sim.NewNode("10.0.0.9")
	if err != nil {
		return 0, err
	}
	if _, err := dnssd.NewResponder(svcNode, DNSName, ServiceURL); err != nil {
		return 0, err
	}
	done := 0
	for i := 0; i < clients; i++ {
		n, err := sim.NewNode(fmt.Sprintf("10.0.1.%d", i+1))
		if err != nil {
			return 0, err
		}
		ua := slp.NewUserAgent(n, slp.WithConvergenceWait(300*time.Millisecond))
		ua.Lookup(SLPType, func(slp.LookupResult) { done++ })
	}
	if err := sim.RunUntil(func() bool { return done == clients }, time.Minute); err != nil {
		return 0, err
	}
	sim.RunToQuiescence()
	st := bridge.Engine.Stats()
	if st.Completed != clients {
		return st.Completed, fmt.Errorf("bench: unit completed %d of %d sessions (failed=%d rejected=%d dropped=%d)",
			st.Completed, clients, st.Failed, st.Rejected, st.Dropped)
	}
	return st.Completed, nil
}

// RunParallelSessions drives `units` independent RunParallelUnit
// simulations across `workers` goroutines and measures aggregate
// session throughput. workers=1 is the sequential baseline; at
// workers = GOMAXPROCS ≥ 4 the run delivers ≥ 2× the baseline
// throughput. The speedup comes from running independent simulators
// on parallel cores — within one simulator the WorkTracker contract
// deliberately serialises session work to keep virtual time
// deterministic, so intra-engine parallelism (sessions of one bridge
// computing simultaneously) shows only under realnet, where no
// virtual clock constrains the session goroutines. Session counts are
// deterministic per baseSeed; Elapsed is wall-clock.
func RunParallelSessions(units, clients, workers int, baseSeed int64) (ParallelResult, error) {
	if units < 1 || workers < 1 {
		return ParallelResult{}, fmt.Errorf("bench: units and workers must be positive")
	}
	res := ParallelResult{Units: units, ClientsPerUnit: clients, Workers: workers}
	jobs := make(chan int64, units)
	for i := 0; i < units; i++ {
		jobs <- baseSeed + int64(i)
	}
	close(jobs)
	var (
		mu       sync.Mutex
		sessions int
		firstErr error
		wg       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range jobs {
				n, err := RunParallelUnit(clients, seed)
				mu.Lock()
				sessions += n
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Sessions = sessions
	if res.Elapsed > 0 {
		res.PerSecond = float64(sessions) / res.Elapsed.Seconds()
	}
	return res, firstErr
}
