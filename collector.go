package starlink

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/promtext"
)

// collectorFailureRing bounds the recent-failure trace buffer.
const collectorFailureRing = 32

// dropReasons are the structured drop classes the collector exposes;
// every class is always emitted (zero-valued when never seen) so the
// starlink_drops_total series exists from the first scrape.
var dropReasons = []string{"overloaded", "draining", "closed", "ambiguous", "other"}

// Collector turns deployments into an HTTP observability surface. It
// plays two composable roles:
//
//   - an Observer (register with WithObserver) accumulating event-level
//     counters — sessions started/completed/failed, classifications,
//     drops by structured reason — and a ring of recent failed-session
//     flight-recorder traces;
//   - a registry of named Deployments (Register) whose Metrics and
//     Sessions snapshots back the exposition.
//
// Handler serves the Prometheus text exposition on /metrics and plain
// text debug pages under /debug/starlink/ (index, live sessions,
// recent failures). One Collector may serve many deployments and is
// safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	names []string
	deps  map[string]Deployment

	started    uint64
	completed  uint64
	failed     uint64
	classified uint64
	drops      map[string]uint64

	failures []SessionStats
	failPos  int
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		deps:  map[string]Deployment{},
		drops: map[string]uint64{},
	}
}

// Register adds (or replaces) a named deployment in the exposition.
func (c *Collector) Register(name string, d Deployment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.deps[name]; !ok {
		c.names = append(c.names, name)
		sort.Strings(c.names)
	}
	c.deps[name] = d
}

// Unregister removes a named deployment from the exposition.
func (c *Collector) Unregister(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.deps[name]; !ok {
		return
	}
	delete(c.deps, name)
	for i, n := range c.names {
		if n == name {
			c.names = append(c.names[:i], c.names[i+1:]...)
			break
		}
	}
}

var _ Observer = (*Collector)(nil)

// OnSessionStart implements Observer.
func (c *Collector) OnSessionStart(SessionStart) {
	c.mu.Lock()
	c.started++
	c.mu.Unlock()
}

// OnSessionEnd implements Observer. Failed sessions (with their
// flight-recorder traces) are retained in a fixed ring readable on the
// /debug/starlink/failures page.
func (c *Collector) OnSessionEnd(s SessionStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.Err == nil {
		c.completed++
		return
	}
	c.failed++
	if len(c.failures) < collectorFailureRing {
		c.failures = append(c.failures, s)
		return
	}
	c.failures[c.failPos] = s
	c.failPos = (c.failPos + 1) % collectorFailureRing
}

// OnClassify implements Observer.
func (c *Collector) OnClassify(Classification) {
	c.mu.Lock()
	c.classified++
	c.mu.Unlock()
}

// OnDeploy implements Observer.
func (c *Collector) OnDeploy(CaseEvent) {}

// OnUndeploy implements Observer.
func (c *Collector) OnUndeploy(CaseEvent) {}

// OnDrop implements Observer, classifying the drop's structured reason
// with errors.Is.
func (c *Collector) OnDrop(d Drop) {
	reason := "other"
	switch {
	case errors.Is(d.Reason, ErrOverloaded):
		reason = "overloaded"
	case errors.Is(d.Reason, ErrDraining):
		reason = "draining"
	case errors.Is(d.Reason, ErrClosed):
		reason = "closed"
	case errors.Is(d.Reason, ErrAmbiguousPayload):
		reason = "ambiguous"
	}
	c.mu.Lock()
	c.drops[reason]++
	c.mu.Unlock()
}

// snapshot copies the registry and observer state under the lock.
func (c *Collector) snapshot() (names []string, deps map[string]Deployment,
	started, completed, failed, classified uint64, drops map[string]uint64, failures []SessionStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names = append([]string(nil), c.names...)
	deps = make(map[string]Deployment, len(c.deps))
	for n, d := range c.deps {
		deps[n] = d
	}
	drops = make(map[string]uint64, len(c.drops))
	for r, n := range c.drops {
		drops[r] = n
	}
	// Oldest-first view of the failure ring.
	failures = append(append([]SessionStats(nil), c.failures[c.failPos:]...), c.failures[:c.failPos]...)
	return names, deps, c.started, c.completed, c.failed, c.classified, drops, failures
}

// Handler returns the collector's HTTP surface: the Prometheus text
// exposition on /metrics and plain text debug pages on
// /debug/starlink/ (index), /debug/starlink/sessions (live sessions
// with their traces) and /debug/starlink/failures (recent failed
// sessions from the observer ring).
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", c.serveMetrics)
	mux.HandleFunc("/debug/starlink/", c.serveIndex)
	mux.HandleFunc("/debug/starlink/sessions", c.serveSessions)
	mux.HandleFunc("/debug/starlink/failures", c.serveFailures)
	return mux
}

func (c *Collector) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	names, deps, started, completed, failed, classified, drops, _ := c.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw := promtext.NewWriter(w)

	pw.Family("starlink_observed_sessions_total",
		"Sessions seen by the observer chain, by result.", "counter")
	pw.Sample("starlink_observed_sessions_total",
		[]promtext.Label{{Name: "result", Value: "started"}}, float64(started))
	pw.Sample("starlink_observed_sessions_total",
		[]promtext.Label{{Name: "result", Value: "completed"}}, float64(completed))
	pw.Sample("starlink_observed_sessions_total",
		[]promtext.Label{{Name: "result", Value: "failed"}}, float64(failed))

	pw.Family("starlink_classifications_total",
		"Entry payload classifications seen by the observer chain.", "counter")
	pw.Sample("starlink_classifications_total", nil, float64(classified))

	pw.Family("starlink_drops_total",
		"Refused work by structured reason (errors.Is classes).", "counter")
	for _, reason := range dropReasons {
		pw.Sample("starlink_drops_total",
			[]promtext.Label{{Name: "reason", Value: reason}}, float64(drops[reason]))
	}

	type depMetrics struct {
		name string
		m    Metrics
	}
	snaps := make([]depMetrics, 0, len(names))
	for _, name := range names {
		snaps = append(snaps, depMetrics{name: name, m: deps[name].Metrics()})
	}

	pw.Family("starlink_deployment_state",
		"Deployment lifecycle state (1 = current state).", "gauge")
	for _, s := range snaps {
		pw.Sample("starlink_deployment_state", []promtext.Label{
			{Name: "deployment", Value: s.name},
			{Name: "state", Value: s.m.State.String()},
		}, 1)
	}

	pw.Family("starlink_sessions_live", "Currently executing sessions.", "gauge")
	for _, s := range snaps {
		for _, cs := range sortedCases(s.m.Cases) {
			pw.Sample("starlink_sessions_live", []promtext.Label{
				{Name: "deployment", Value: s.name},
				{Name: "case", Value: cs},
			}, float64(s.m.Cases[cs].Live))
		}
	}

	pw.Family("starlink_sessions_total", "Finished session admissions by result.", "counter")
	pw.Family("starlink_payloads_total", "Discarded payloads by result.", "counter")
	for _, s := range snaps {
		for _, cs := range sortedCases(s.m.Cases) {
			sm := s.m.Cases[cs]
			base := []promtext.Label{
				{Name: "deployment", Value: s.name},
				{Name: "case", Value: cs},
			}
			for _, rv := range []struct {
				result string
				v      int
			}{
				{"completed", sm.Completed},
				{"failed", sm.Failed},
				{"rejected", sm.Rejected},
				{"drain_rejected", sm.DrainRejected},
			} {
				pw.Sample("starlink_sessions_total",
					append(append([]promtext.Label(nil), base...),
						promtext.Label{Name: "result", Value: rv.result}), float64(rv.v))
			}
			for _, rv := range []struct {
				result string
				v      int
			}{
				{"dropped", sm.Dropped},
				{"parse_errors", sm.ParseErrors},
				{"ignored", sm.Ignored},
			} {
				pw.Sample("starlink_payloads_total",
					append(append([]promtext.Label(nil), base...),
						promtext.Label{Name: "result", Value: rv.result}), float64(rv.v))
			}
		}
	}

	pw.Family("starlink_dispatch_total",
		"Shared-listener classification outcomes (dispatchers only).", "counter")
	for _, s := range snaps {
		d := s.m.Dispatch
		for _, rv := range []struct {
			result string
			v      int
		}{
			{"dispatched", d.Dispatched},
			{"ambiguous", d.Ambiguous},
			{"unroutable", d.Unroutable},
			{"parse_errors", d.ParseErrors},
			{"suppressed", d.Suppressed},
			{"rejected", d.Rejected},
			{"fast_path", d.FastPath},
			{"slow_path", d.SlowPath},
		} {
			pw.Sample("starlink_dispatch_total", []promtext.Label{
				{Name: "deployment", Value: s.name},
				{Name: "result", Value: rv.result},
			}, float64(rv.v))
		}
	}

	pw.Family("starlink_stage_latency_seconds",
		"Per-stage pipeline latency (the 'session' stage is the whole-session duration).",
		"histogram")
	for _, s := range snaps {
		for _, cs := range sortedCaseLatency(s.m.CaseLatency) {
			for _, row := range s.m.CaseLatency[cs] {
				pw.HistogramSample("starlink_stage_latency_seconds", []promtext.Label{
					{Name: "deployment", Value: s.name},
					{Name: "case", Value: cs},
					{Name: "stage", Value: row.Stage},
				}, promBuckets(row.Buckets), row.Sum.Seconds(), row.Count)
			}
		}
	}

	pw.Family("starlink_lane_depth",
		"Payloads queued in each ingest lane (capacity via WithLanePolicy).", "gauge")
	for _, s := range snaps {
		for _, row := range s.m.Lanes {
			pw.Sample("starlink_lane_depth", []promtext.Label{
				{Name: "deployment", Value: s.name},
				{Name: "lane", Value: row.Lane},
			}, float64(row.Depth))
		}
	}

	pw.Family("starlink_lane_shed_total",
		"Payloads shed by the lane watermark policy (each an ErrOverloaded drop).", "counter")
	for _, s := range snaps {
		for _, row := range s.m.Lanes {
			pw.Sample("starlink_lane_shed_total", []promtext.Label{
				{Name: "deployment", Value: s.name},
				{Name: "lane", Value: row.Lane},
			}, float64(row.Shed))
		}
	}

	pw.Family("starlink_lane_wait_seconds",
		"Ingest lane queue wait: listener arrival to ingest-worker pickup.", "histogram")
	for _, s := range snaps {
		for _, row := range s.m.Lanes {
			pw.HistogramSample("starlink_lane_wait_seconds", []promtext.Label{
				{Name: "deployment", Value: s.name},
				{Name: "lane", Value: row.Lane},
			}, promBuckets(row.Wait.Buckets), row.Wait.Sum.Seconds(), row.Wait.Count)
		}
	}

	pw.Family("starlink_classify_latency_seconds",
		"Classification decision latency by path (dispatchers only).", "histogram")
	for _, s := range snaps {
		for _, pv := range []struct {
			path string
			row  StageLatency
		}{
			{"fast", s.m.Dispatch.FastPathLatency},
			{"slow", s.m.Dispatch.SlowPathLatency},
		} {
			pw.HistogramSample("starlink_classify_latency_seconds", []promtext.Label{
				{Name: "deployment", Value: s.name},
				{Name: "path", Value: pv.path},
			}, promBuckets(pv.row.Buckets), pv.row.Sum.Seconds(), pv.row.Count)
		}
	}

	pw.Family("starlink_ingested_total",
		"Payloads accepted off entry listeners, by receive path.", "counter")
	for _, s := range snaps {
		for _, cs := range sortedCases(s.m.Cases) {
			sm := s.m.Cases[cs]
			base := []promtext.Label{
				{Name: "deployment", Value: s.name},
				{Name: "case", Value: cs},
			}
			pw.Sample("starlink_ingested_total",
				append(append([]promtext.Label(nil), base...),
					promtext.Label{Name: "path", Value: "total"}), float64(sm.Ingested))
			pw.Sample("starlink_ingested_total",
				append(append([]promtext.Label(nil), base...),
					promtext.Label{Name: "path", Value: "batched"}), float64(sm.IngestedBatched))
		}
	}

	// Transport syscall accounting is process-global (every deployment
	// shares the transport layer), so the families carry no deployment
	// label and are read once, straight from netapi.
	t := transportMetricsOf(netapi.ReadIOStats())
	pw.Family("starlink_udp_recv_batches_total",
		"Batched receive syscalls (recvmmsg) that returned datagrams.", "counter")
	pw.Sample("starlink_udp_recv_batches_total", nil, float64(t.RecvBatches))
	pw.Family("starlink_udp_recv_batch_packets_total",
		"Datagrams returned by batched receive syscalls; divide by starlink_udp_recv_batches_total for the mean batch size.", "counter")
	pw.Sample("starlink_udp_recv_batch_packets_total", nil, float64(t.RecvBatchPackets))
	pw.Family("starlink_udp_recv_multi_batches_total",
		"Batched receives that carried more than one datagram.", "counter")
	pw.Sample("starlink_udp_recv_multi_batches_total", nil, float64(t.RecvMultiBatches))
	pw.Family("starlink_udp_recv_singles_total",
		"Per-datagram receive syscalls (portable path).", "counter")
	pw.Sample("starlink_udp_recv_singles_total", nil, float64(t.RecvSingles))
	pw.Family("starlink_udp_send_batches_total",
		"Batched send syscalls (sendmmsg, multicast fan-out).", "counter")
	pw.Sample("starlink_udp_send_batches_total", nil, float64(t.SendBatches))
	pw.Family("starlink_udp_send_batch_packets_total",
		"Datagrams carried by batched send syscalls.", "counter")
	pw.Sample("starlink_udp_send_batch_packets_total", nil, float64(t.SendBatchPackets))
	pw.Family("starlink_udp_send_singles_total",
		"Per-datagram send syscalls (unicast and portable fan-out).", "counter")
	pw.Sample("starlink_udp_send_singles_total", nil, float64(t.SendSingles))
	pw.Family("starlink_stream_flushes_total",
		"Coalesced stream-writer flushes (one vectored write each).", "counter")
	pw.Sample("starlink_stream_flushes_total", nil, float64(t.StreamFlushes))
	pw.Family("starlink_stream_flush_chunks_total",
		"Queued chunks drained by coalesced stream flushes.", "counter")
	pw.Sample("starlink_stream_flush_chunks_total", nil, float64(t.StreamFlushChunks))
}

func promBuckets(bs []LatencyBucket) []promtext.Bucket {
	out := make([]promtext.Bucket, len(bs))
	for i, b := range bs {
		out[i] = promtext.Bucket{Le: b.UpperBound.Seconds(), Count: b.Count}
	}
	return out
}

func sortedCases(m map[string]SessionMetrics) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedCaseLatency(m map[string][]StageLatency) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (c *Collector) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/debug/starlink/" && r.URL.Path != "/debug/starlink" {
		http.NotFound(w, r)
		return
	}
	names, deps, started, completed, failed, classified, drops, failures := c.snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "starlink debug surface\n\n")
	fmt.Fprintf(w, "observer: started=%d completed=%d failed=%d classified=%d drops=%v\n",
		started, completed, failed, classified, drops)
	fmt.Fprintf(w, "recent failures retained: %d (see /debug/starlink/failures)\n", len(failures))
	fmt.Fprintf(w, "live sessions: see /debug/starlink/sessions\n\n")
	for _, name := range names {
		m := deps[name].Metrics()
		fmt.Fprintf(w, "deployment %q: state=%s live=%d completed=%d failed=%d rejected=%d\n",
			name, m.State, m.Sessions.Live, m.Sessions.Completed, m.Sessions.Failed, m.Sessions.Rejected)
		for _, cs := range sortedCases(m.Cases) {
			sm := m.Cases[cs]
			fmt.Fprintf(w, "  case %-20s live=%d completed=%d failed=%d dropped=%d parse_errors=%d\n",
				cs, sm.Live, sm.Completed, sm.Failed, sm.Dropped, sm.ParseErrors)
		}
		for _, row := range m.Latency {
			fmt.Fprintf(w, "  stage %-12s n=%-6d p50=%-12s p90=%-12s p99=%s\n",
				row.Stage, row.Count, row.P50, row.P90, row.P99)
		}
	}
}

func (c *Collector) serveSessions(w http.ResponseWriter, _ *http.Request) {
	names, deps, _, _, _, _, _, _ := c.snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	now := time.Now()
	total := 0
	for _, name := range names {
		for _, s := range deps[name].Sessions() {
			total++
			fmt.Fprintf(w, "deployment=%s case=%s key=%s origin=%s age=%s\n",
				name, s.Case, s.Key, s.Origin, now.Sub(s.Start).Round(time.Microsecond))
			if len(s.Trace) > 0 {
				fmt.Fprintf(w, "  trace: %s\n", FormatTrace(s.Trace))
			}
		}
	}
	fmt.Fprintf(w, "\n%d live session(s)\n", total)
}

func (c *Collector) serveFailures(w http.ResponseWriter, _ *http.Request) {
	_, _, _, _, _, _, _, failures := c.snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, s := range failures {
		fmt.Fprintf(w, "case=%s origin=%s start=%s duration=%s err=%v\n",
			s.Case, s.Origin, s.Start.Format(time.RFC3339Nano), s.Duration, s.Err)
		if len(s.Trace) > 0 {
			fmt.Fprintf(w, "  trace: %s\n", FormatTrace(s.Trace))
		}
	}
	fmt.Fprintf(w, "\n%d recent failure(s)\n", len(failures))
}
